//! Wire-path chaos suite: deterministic fault injection across both TCP
//! legs (QIPC client leg and PG v3 backend leg) via the `chaosnet`
//! proxy.
//!
//! Every scenario scripts *exactly* which connection fails, at which
//! byte offset, in which direction — and asserts the typed outcome:
//! transparent retry, journal replay, retry exhaustion, deadline
//! expiry, protocol rejection, or non-idempotent refusal.

use chaosnet::{ChaosProxy, FaultPlan, LegFaults};
use hyperq::backend::{share, Backend};
use hyperq::endpoint::{BackendFactory, EndpointConfig, QipcClient, QipcEndpoint};
use hyperq::gateway::{Credentials, PgWireBackend};
use hyperq::{loader, HyperQSession, RetryPolicy, SessionConfig, WireError, WireErrorKind, WireTimeouts};
use pgdb::server::{PgServer, ServerConfig};
use pgdb::{Cell, QueryResult};
use qlang::value::{Table, Value};
use std::sync::Arc;
use std::time::Duration;

fn creds() -> Credentials {
    Credentials { user: "u".into(), password: String::new(), database: "hist".into() }
}

/// Byte length of the startup packet the Gateway sends for [`creds`] —
/// used to place faults precisely at the first post-handshake frame.
fn startup_len() -> u64 {
    let mut buf = bytes::BytesMut::new();
    pgwire::codec::encode_frontend(
        &pgwire::messages::FrontendMessage::Startup {
            params: vec![
                ("user".to_string(), "u".to_string()),
                ("database".to_string(), "hist".to_string()),
            ],
        },
        &mut buf,
    );
    buf.len() as u64
}

/// pgdb TCP server + chaos proxy in front of it.
fn chaotic_backend() -> (PgServer, ChaosProxy) {
    let db = pgdb::Db::new();
    let server = PgServer::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let proxy = ChaosProxy::start(&server.addr.to_string()).unwrap();
    (server, proxy)
}

fn gateway_via(proxy: &ChaosProxy, retry: RetryPolicy) -> PgWireBackend {
    PgWireBackend::connect_with(
        &proxy.addr().to_string(),
        &creds(),
        WireTimeouts::default(),
        retry,
    )
    .unwrap()
}

#[test]
fn mid_query_sever_is_transparently_retried() {
    let (server, proxy) = chaotic_backend();
    // Connection 1: forward the whole startup packet plus one byte of
    // the first Query frame, then sever — the classic mid-query cut.
    proxy.push_plan(FaultPlan {
        to_upstream: LegFaults { truncate_after: Some(startup_len() + 1), ..LegFaults::clean() },
        ..FaultPlan::clean()
    });
    let mut gw = gateway_via(&proxy, RetryPolicy::immediate(3));
    match gw.execute_sql("SELECT 1 AS x").unwrap() {
        QueryResult::Rows(rows) => assert_eq!(rows.data[0][0], Cell::Int(1)),
        other => panic!("expected rows, got {other:?}"),
    }
    assert_eq!(gw.reconnects(), 1, "exactly one transparent reconnect");
    assert_eq!(proxy.connections(), 2);
    server.detach();
}

/// Observability of recovery: a mid-query sever that is transparently
/// retried increments `wire_reconnects_total` in the global metrics
/// registry and stamps a `Recovering` event into the query's span tree.
#[test]
fn mid_query_sever_increments_reconnect_metric_and_emits_recovering_event() {
    let (server, proxy) = chaotic_backend();
    proxy.push_plan(FaultPlan {
        to_upstream: LegFaults { truncate_after: Some(startup_len() + 1), ..LegFaults::clean() },
        ..FaultPlan::clean()
    });
    let gw = gateway_via(&proxy, RetryPolicy::immediate(3));
    let reg = obs::global_registry();
    let reconnects_before = reg.counter_value("wire_reconnects_total");

    let mut session = HyperQSession::new(share(gw), SessionConfig::default());
    let (v, trace) = session.execute_observed("1+2").unwrap();
    assert!(v.q_eq(&Value::Atom(qlang::value::Atom::Long(3))), "{v:?}");

    assert!(
        reg.counter_value("wire_reconnects_total") > reconnects_before,
        "reconnect not counted"
    );
    assert!(
        trace.has_event(|e| matches!(e, hyperq::SpanEvent::Recovering { reconnects } if *reconnects >= 1)),
        "no Recovering event in trace:\n{}",
        trace.render()
    );
    server.detach();
}

#[test]
fn journal_replay_rebuilds_temp_tables_after_reconnect() {
    let (server, proxy) = chaotic_backend();
    let mut gw = gateway_via(&proxy, RetryPolicy::immediate(3));
    gw.execute_sql("CREATE TABLE base (x bigint)").unwrap();
    gw.execute_sql("INSERT INTO base VALUES (7), (9)").unwrap();
    gw.execute_sql("CREATE TEMPORARY TABLE \"HQ_TEMP_1\" AS SELECT x FROM base WHERE x > 8")
        .unwrap();
    assert_eq!(gw.journal().len(), 1);

    // The backend "crashes": the temp table dies with its session.
    proxy.sever_active();

    // The next read reconnects, replays the journal (recreating the
    // temp table on the fresh session) and re-runs transparently.
    match gw.execute_sql("SELECT x FROM \"HQ_TEMP_1\"").unwrap() {
        QueryResult::Rows(rows) => {
            assert_eq!(rows.data.len(), 1);
            assert_eq!(rows.data[0][0], Cell::Int(9));
        }
        other => panic!("expected rows, got {other:?}"),
    }
    assert_eq!(gw.reconnects(), 1);
    server.detach();
}

#[test]
fn retry_exhaustion_yields_a_typed_error() {
    let (server, proxy) = chaotic_backend();
    let mut gw = gateway_via(&proxy, RetryPolicy::immediate(3));
    // Every future connection dies before a byte crosses; the current
    // one dies now.
    proxy.set_default_plan(FaultPlan {
        to_upstream: LegFaults::sever_immediately(),
        ..FaultPlan::clean()
    });
    proxy.sever_active();
    let err = gw.execute_sql("SELECT 1").unwrap_err();
    assert_eq!(err.kind, WireErrorKind::RetriesExhausted, "{err}");
    assert!(err.message.contains("3 of 3 attempts"), "{err}");
    server.detach();
}

#[test]
fn slow_backend_trips_the_read_deadline() {
    let (server, proxy) = chaotic_backend();
    // Handshake at full speed; every frame after the startup packet is
    // stalled well past the Gateway's read deadline.
    proxy.push_plan(FaultPlan {
        to_upstream: LegFaults {
            delay: Some(Duration::from_millis(500)),
            delay_after: startup_len(),
            ..LegFaults::clean()
        },
        ..FaultPlan::clean()
    });
    let timeouts = WireTimeouts {
        read: Some(Duration::from_millis(80)),
        ..WireTimeouts::default()
    };
    let mut gw = PgWireBackend::connect_with(
        &proxy.addr().to_string(),
        &creds(),
        timeouts,
        RetryPolicy::no_retry(),
    )
    .unwrap();
    let err = gw.execute_sql("SELECT 1").unwrap_err();
    // Deliberately NOT retried: the statement may still be executing.
    assert_eq!(err.kind, WireErrorKind::Timeout, "{err}");
    server.detach();
}

#[test]
fn corrupt_backend_length_prefix_is_a_protocol_error() {
    let (server, proxy) = chaotic_backend();
    // Flip a length byte of the very first backend frame (AuthenticationOk).
    proxy.push_plan(FaultPlan {
        to_client: LegFaults { corrupt_at: Some(1), ..LegFaults::clean() },
        ..FaultPlan::clean()
    });
    let Err(err) = PgWireBackend::connect_with(
        &proxy.addr().to_string(),
        &creds(),
        WireTimeouts::default(),
        RetryPolicy::no_retry(),
    ) else {
        panic!("corrupt stream accepted");
    };
    assert_eq!(err.kind, WireErrorKind::Protocol, "{err}");
    server.detach();
}

#[test]
fn non_idempotent_statements_are_not_replayed() {
    let (server, proxy) = chaotic_backend();
    let mut gw = gateway_via(&proxy, RetryPolicy::immediate(5));
    gw.execute_sql("CREATE TABLE t (x bigint)").unwrap();
    // Sever every live connection mid-flight on the next frame.
    proxy.set_default_plan(FaultPlan {
        to_upstream: LegFaults::sever_immediately(),
        ..FaultPlan::clean()
    });
    proxy.sever_active();
    let before = gw.reconnects();
    let err = gw.execute_sql("INSERT INTO t VALUES (1)").unwrap_err();
    assert_eq!(err.kind, WireErrorKind::NonIdempotent, "{err}");
    // No reconnect was attempted for the write: replaying could apply
    // the mutation twice.
    assert_eq!(gw.reconnects(), before);
    server.detach();
}

/// The acceptance demo: a Q application on one QIPC connection, the
/// backend dying and recovering underneath it — queries keep answering
/// on the SAME client connection throughout.
#[test]
fn q_client_survives_backend_crash_end_to_end() {
    let db = pgdb::Db::new();
    {
        let mut s = HyperQSession::with_direct(&db);
        let trades = Table::new(
            vec!["Symbol".into(), "Price".into()],
            vec![
                Value::Symbols(vec!["GOOG".into(), "IBM".into()]),
                Value::Floats(vec![100.0, 50.0]),
            ],
        )
        .unwrap();
        loader::load_table(&mut s, "trades", &trades).unwrap();
    }
    let server = PgServer::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let proxy = Arc::new(ChaosProxy::start(&server.addr.to_string()).unwrap());

    // Endpoint whose per-connection backend is a Gateway THROUGH the
    // chaos proxy, configured from the session's own knobs.
    let session_cfg = SessionConfig { retry: RetryPolicy::immediate(4), ..SessionConfig::default() };
    let proxy_addr = proxy.addr().to_string();
    let factory: BackendFactory = Arc::new(move || {
        let gw = PgWireBackend::connect_with(
            &proxy_addr,
            &creds(),
            session_cfg.wire,
            session_cfg.retry,
        )?;
        Ok(share(gw))
    });
    let config = EndpointConfig { session: session_cfg, ..EndpointConfig::default() };
    let ep = QipcEndpoint::start_with("127.0.0.1:0", config, factory).unwrap();
    let mut client = QipcClient::connect(&ep.addr.to_string(), "trader", "").unwrap();

    // Healthy round trip.
    let v = client.query("select Price from trades where Symbol=`GOOG").unwrap();
    assert!(matches!(v, Value::Table(_)), "{v:?}");

    // Backend crashes; the Gateway reconnects transparently — the Q
    // client sees a correct answer, not an error.
    proxy.sever_active();
    let v = client.query("select Price from trades where Symbol=`IBM").unwrap();
    assert!(matches!(v, Value::Table(_)), "{v:?}");

    // Backend goes DOWN hard: retries exhaust, and the client gets a
    // typed error frame on the still-open connection.
    proxy.set_default_plan(FaultPlan {
        to_upstream: LegFaults::sever_immediately(),
        ..FaultPlan::clean()
    });
    proxy.sever_active();
    let err = client.query("select Price from trades").unwrap_err();
    assert!(err.to_string().contains("retries-exhausted"), "{err}");

    // Backend comes back: the SAME client connection recovers.
    proxy.set_default_plan(FaultPlan::clean());
    let v = client.query("select Price from trades where Symbol=`GOOG").unwrap();
    assert!(matches!(v, Value::Table(_)), "{v:?}");

    ep.detach();
    server.detach();
}

#[test]
fn corrupt_qipc_frame_yields_an_error_frame() {
    let db = pgdb::Db::new();
    let ep = QipcEndpoint::start(db, "127.0.0.1:0", EndpointConfig::default()).unwrap();
    // Chaos proxy on the CLIENT leg this time.
    let proxy = ChaosProxy::start(&ep.addr.to_string()).unwrap();
    let hs_len = qipc::client_handshake("trader", "", 3).len() as u64;
    // Flip the most significant byte of the first query frame's length
    // field (little-endian u32 at bytes 4..8 of the QIPC header), so
    // the frame claims ~4 GiB.
    proxy.push_plan(FaultPlan {
        to_upstream: LegFaults { corrupt_at: Some(hs_len + 7), ..LegFaults::clean() },
        ..FaultPlan::clean()
    });
    let mut client = QipcClient::connect(&proxy.addr().to_string(), "trader", "").unwrap();
    let err = client.query("1+1").unwrap_err();
    assert!(err.to_string().contains("'ipc"), "{err}");
}

#[test]
fn degraded_endpoint_answers_queries_with_backend_errors() {
    // The factory cannot reach the backend at all: the Q client still
    // connects, and every query is answered with a typed error frame.
    let factory: BackendFactory =
        Arc::new(|| Err(WireError::connect("cannot connect to backend: refused")));
    let ep = QipcEndpoint::start_with("127.0.0.1:0", EndpointConfig::default(), factory).unwrap();
    let mut client = QipcClient::connect(&ep.addr.to_string(), "t", "").unwrap();
    for _ in 0..2 {
        let err = client.query("select from trades").unwrap_err();
        assert!(err.to_string().contains("backend: unavailable"), "{err}");
    }
    ep.detach();
}

// ---------------------------------------------------------------------
// Degraded-shard scenarios: chaosnet in front of ONE shard of a remote
// scatter-gather cluster (ISSUE 8). A lost shard must surface as a
// typed partial-failure error naming exactly which shard died and which
// partials arrived — and sessions not touching that shard must keep
// answering normally throughout.
// ---------------------------------------------------------------------

use hyperq::shard::{Mode, ShardCluster, ShardOpts};
use hyperq::ShardFailure;
use pgdb::BatchQueryResult;
use std::collections::HashMap;

/// Remote 2-shard cluster whose shard 1 is reached through a chaos
/// proxy: (servers, proxy, cluster). `fact` (100 rows) partitions
/// across both shards; `dim` (4 rows) broadcasts.
fn chaotic_cluster(
    timeouts: WireTimeouts,
) -> (Vec<PgServer>, ChaosProxy, std::sync::Arc<ShardCluster>) {
    let mut servers: Vec<PgServer> = (0..3)
        .map(|_| PgServer::start(pgdb::Db::new(), "127.0.0.1:0", ServerConfig::default()).unwrap())
        .collect();
    let proxy = ChaosProxy::start(&servers[1].addr.to_string()).unwrap();
    let shard_addrs = vec![servers[0].addr.to_string(), proxy.addr().to_string()];
    let coord_addr = servers[2].addr.to_string();
    let cluster = ShardCluster::remote(
        shard_addrs,
        coord_addr,
        creds(),
        timeouts,
        RetryPolicy::no_retry(),
    );
    {
        let mut r = cluster.router().unwrap();
        r.execute_sql("CREATE TABLE fact (id bigint, v bigint)").unwrap();
        let rows: Vec<String> = (0..100).map(|i| format!("({i}, {})", i * 3)).collect();
        r.execute_sql(&format!("INSERT INTO fact VALUES {}", rows.join(", "))).unwrap();
        r.execute_sql("CREATE TABLE dim (k bigint)").unwrap();
        r.execute_sql("INSERT INTO dim VALUES (1), (2), (3), (4)").unwrap();
    }
    assert_eq!(cluster.table_meta("fact").unwrap().mode, Mode::Partitioned);
    assert_eq!(cluster.table_meta("dim").unwrap().mode, Mode::Broadcast);
    // The env-derived default broadcast threshold (64) is what the
    // fixture sizes assume; pin it so an ambient HQ_SHARD_BROADCAST
    // cannot silently change what this suite tests.
    let _ = ShardOpts { broadcast_threshold: 64, float_agg: false, stats: true, keys: HashMap::new() };
    servers.shrink_to_fit();
    (servers, proxy, cluster)
}

fn shard_count_rows(r: &mut hyperq::ShardRouter, sql: &str) -> Vec<Vec<Cell>> {
    match r.execute_sql_batch(sql).unwrap().unwrap() {
        BatchQueryResult::Batch(b) => b.into_rows().data,
        other => panic!("expected rows, got {other:?}"),
    }
}

#[test]
fn severed_shard_yields_typed_partial_failure_naming_the_shard() {
    let (servers, proxy, cluster) = chaotic_cluster(WireTimeouts::default());
    let mut victim = cluster.router().unwrap();
    // A session that only ever touches broadcast/coordinator state,
    // opened while the cluster is healthy.
    let mut bystander = cluster.router().unwrap();

    let reg = obs::global_registry();
    let degraded_before = reg.counter_value("shard_degraded_total");

    // Shard 1 goes down hard: every live connection through the proxy
    // dies now, and every reconnect attempt dies immediately.
    proxy.set_default_plan(FaultPlan {
        to_upstream: LegFaults::sever_immediately(),
        ..FaultPlan::clean()
    });
    proxy.sever_active();

    let err = victim.execute_sql("SELECT count(*) AS n FROM fact").unwrap_err();
    assert_eq!(err.kind, WireErrorKind::ShardPartial, "{err}");
    let detail: &ShardFailure = err.shard.as_deref().expect("typed shard detail missing");
    assert_eq!(
        detail.failed.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
        vec![1],
        "wrong shard blamed: {err}"
    );
    assert_eq!(detail.arrived, vec![0], "healthy shard's partial must have arrived: {err}");
    assert!(err.to_string().contains("shard 1"), "error must name the lost shard: {err}");
    assert_eq!(reg.counter_value("shard_degraded_total"), degraded_before + 1);

    // The bystander's statements never route to shard 1 (dim is
    // broadcast → coordinator-local), so it is completely unaffected
    // while the shard is down.
    let rows = shard_count_rows(&mut bystander, "SELECT k FROM dim ORDER BY k");
    assert_eq!(rows.len(), 4);

    // Shard 1 comes back: a fresh router over the same cluster answers
    // the exact query that just failed, correctly.
    proxy.set_default_plan(FaultPlan::clean());
    let mut recovered = cluster.router().unwrap();
    let rows = shard_count_rows(&mut recovered, "SELECT count(*) AS n FROM fact");
    assert_eq!(rows[0][0], Cell::Int(100));

    for s in servers {
        s.detach();
    }
}

#[test]
fn stalled_shard_trips_the_deadline_into_a_partial_failure() {
    let timeouts = WireTimeouts { read: Some(Duration::from_millis(80)), ..WireTimeouts::default() };
    let (servers, proxy, cluster) = chaotic_cluster(timeouts);

    // Shard 1 stalls mid-query: bytes flow for the handshake, then every
    // later frame is delayed far past the router's read deadline. The
    // plan lands on connections opened from here on, so the router below
    // handshakes fine and starves on its first scatter.
    proxy.set_default_plan(FaultPlan {
        to_upstream: LegFaults {
            delay: Some(Duration::from_millis(500)),
            delay_after: startup_len(),
            ..LegFaults::clean()
        },
        ..FaultPlan::clean()
    });
    let mut r = cluster.router().unwrap();

    let err = r.execute_sql("SELECT id FROM fact ORDER BY id").unwrap_err();
    assert_eq!(err.kind, WireErrorKind::ShardPartial, "{err}");
    let detail = err.shard.as_deref().expect("typed shard detail missing");
    assert_eq!(detail.failed.len(), 1);
    assert_eq!(detail.failed[0].0, 1, "the stalled shard must be the one named: {err}");
    assert!(
        detail.failed[0].1.contains("timeout") || detail.failed[0].1.contains("deadline"),
        "cause should reflect the deadline: {err}"
    );

    for s in servers {
        s.detach();
    }
}

#[test]
fn delayed_but_healthy_shard_still_merges_correctly() {
    // A slow shard inside the deadline degrades latency, never results.
    let (servers, proxy, cluster) = chaotic_cluster(WireTimeouts::default());
    let mut r = cluster.router().unwrap();
    proxy.set_default_plan(FaultPlan {
        to_upstream: LegFaults { delay: Some(Duration::from_millis(30)), ..LegFaults::clean() },
        ..FaultPlan::clean()
    });
    let mut slow = cluster.router().unwrap();
    let fast_rows = shard_count_rows(&mut r, "SELECT id, v FROM fact ORDER BY id");
    let slow_rows = shard_count_rows(&mut slow, "SELECT id, v FROM fact ORDER BY id");
    assert_eq!(fast_rows, slow_rows, "a delayed shard must not change the merged result");
    assert_eq!(slow_rows.len(), 100);
    for (i, row) in slow_rows.iter().enumerate() {
        assert_eq!(row[0], Cell::Int(i as i64));
    }
    for s in servers {
        s.detach();
    }
}
