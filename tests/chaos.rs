//! Wire-path chaos suite: deterministic fault injection across both TCP
//! legs (QIPC client leg and PG v3 backend leg) via the `chaosnet`
//! proxy.
//!
//! Every scenario scripts *exactly* which connection fails, at which
//! byte offset, in which direction — and asserts the typed outcome:
//! transparent retry, journal replay, retry exhaustion, deadline
//! expiry, protocol rejection, or non-idempotent refusal.

use chaosnet::{ChaosProxy, FaultPlan, LegFaults};
use hyperq::backend::{share, Backend};
use hyperq::endpoint::{BackendFactory, EndpointConfig, QipcClient, QipcEndpoint};
use hyperq::gateway::{Credentials, PgWireBackend};
use hyperq::{loader, HyperQSession, RetryPolicy, SessionConfig, WireError, WireErrorKind, WireTimeouts};
use pgdb::server::{PgServer, ServerConfig};
use pgdb::{Cell, QueryResult};
use qlang::value::{Table, Value};
use std::sync::Arc;
use std::time::Duration;

fn creds() -> Credentials {
    Credentials { user: "u".into(), password: String::new(), database: "hist".into() }
}

/// Byte length of the startup packet the Gateway sends for [`creds`] —
/// used to place faults precisely at the first post-handshake frame.
fn startup_len() -> u64 {
    let mut buf = bytes::BytesMut::new();
    pgwire::codec::encode_frontend(
        &pgwire::messages::FrontendMessage::Startup {
            params: vec![
                ("user".to_string(), "u".to_string()),
                ("database".to_string(), "hist".to_string()),
            ],
        },
        &mut buf,
    );
    buf.len() as u64
}

/// pgdb TCP server + chaos proxy in front of it.
fn chaotic_backend() -> (PgServer, ChaosProxy) {
    let db = pgdb::Db::new();
    let server = PgServer::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let proxy = ChaosProxy::start(&server.addr.to_string()).unwrap();
    (server, proxy)
}

fn gateway_via(proxy: &ChaosProxy, retry: RetryPolicy) -> PgWireBackend {
    PgWireBackend::connect_with(
        &proxy.addr().to_string(),
        &creds(),
        WireTimeouts::default(),
        retry,
    )
    .unwrap()
}

#[test]
fn mid_query_sever_is_transparently_retried() {
    let (server, proxy) = chaotic_backend();
    // Connection 1: forward the whole startup packet plus one byte of
    // the first Query frame, then sever — the classic mid-query cut.
    proxy.push_plan(FaultPlan {
        to_upstream: LegFaults { truncate_after: Some(startup_len() + 1), ..LegFaults::clean() },
        ..FaultPlan::clean()
    });
    let mut gw = gateway_via(&proxy, RetryPolicy::immediate(3));
    match gw.execute_sql("SELECT 1 AS x").unwrap() {
        QueryResult::Rows(rows) => assert_eq!(rows.data[0][0], Cell::Int(1)),
        other => panic!("expected rows, got {other:?}"),
    }
    assert_eq!(gw.reconnects(), 1, "exactly one transparent reconnect");
    assert_eq!(proxy.connections(), 2);
    server.detach();
}

/// Observability of recovery: a mid-query sever that is transparently
/// retried increments `wire_reconnects_total` in the global metrics
/// registry and stamps a `Recovering` event into the query's span tree.
#[test]
fn mid_query_sever_increments_reconnect_metric_and_emits_recovering_event() {
    let (server, proxy) = chaotic_backend();
    proxy.push_plan(FaultPlan {
        to_upstream: LegFaults { truncate_after: Some(startup_len() + 1), ..LegFaults::clean() },
        ..FaultPlan::clean()
    });
    let gw = gateway_via(&proxy, RetryPolicy::immediate(3));
    let reg = obs::global_registry();
    let reconnects_before = reg.counter_value("wire_reconnects_total");

    let mut session = HyperQSession::new(share(gw), SessionConfig::default());
    let (v, trace) = session.execute_observed("1+2").unwrap();
    assert!(v.q_eq(&Value::Atom(qlang::value::Atom::Long(3))), "{v:?}");

    assert!(
        reg.counter_value("wire_reconnects_total") > reconnects_before,
        "reconnect not counted"
    );
    assert!(
        trace.has_event(|e| matches!(e, hyperq::SpanEvent::Recovering { reconnects } if *reconnects >= 1)),
        "no Recovering event in trace:\n{}",
        trace.render()
    );
    server.detach();
}

#[test]
fn journal_replay_rebuilds_temp_tables_after_reconnect() {
    let (server, proxy) = chaotic_backend();
    let mut gw = gateway_via(&proxy, RetryPolicy::immediate(3));
    gw.execute_sql("CREATE TABLE base (x bigint)").unwrap();
    gw.execute_sql("INSERT INTO base VALUES (7), (9)").unwrap();
    gw.execute_sql("CREATE TEMPORARY TABLE \"HQ_TEMP_1\" AS SELECT x FROM base WHERE x > 8")
        .unwrap();
    assert_eq!(gw.journal().len(), 1);

    // The backend "crashes": the temp table dies with its session.
    proxy.sever_active();

    // The next read reconnects, replays the journal (recreating the
    // temp table on the fresh session) and re-runs transparently.
    match gw.execute_sql("SELECT x FROM \"HQ_TEMP_1\"").unwrap() {
        QueryResult::Rows(rows) => {
            assert_eq!(rows.data.len(), 1);
            assert_eq!(rows.data[0][0], Cell::Int(9));
        }
        other => panic!("expected rows, got {other:?}"),
    }
    assert_eq!(gw.reconnects(), 1);
    server.detach();
}

#[test]
fn retry_exhaustion_yields_a_typed_error() {
    let (server, proxy) = chaotic_backend();
    let mut gw = gateway_via(&proxy, RetryPolicy::immediate(3));
    // Every future connection dies before a byte crosses; the current
    // one dies now.
    proxy.set_default_plan(FaultPlan {
        to_upstream: LegFaults::sever_immediately(),
        ..FaultPlan::clean()
    });
    proxy.sever_active();
    let err = gw.execute_sql("SELECT 1").unwrap_err();
    assert_eq!(err.kind, WireErrorKind::RetriesExhausted, "{err}");
    assert!(err.message.contains("3 of 3 attempts"), "{err}");
    server.detach();
}

#[test]
fn slow_backend_trips_the_read_deadline() {
    let (server, proxy) = chaotic_backend();
    // Handshake at full speed; every frame after the startup packet is
    // stalled well past the Gateway's read deadline.
    proxy.push_plan(FaultPlan {
        to_upstream: LegFaults {
            delay: Some(Duration::from_millis(500)),
            delay_after: startup_len(),
            ..LegFaults::clean()
        },
        ..FaultPlan::clean()
    });
    let timeouts = WireTimeouts {
        read: Some(Duration::from_millis(80)),
        ..WireTimeouts::default()
    };
    let mut gw = PgWireBackend::connect_with(
        &proxy.addr().to_string(),
        &creds(),
        timeouts,
        RetryPolicy::no_retry(),
    )
    .unwrap();
    let err = gw.execute_sql("SELECT 1").unwrap_err();
    // Deliberately NOT retried: the statement may still be executing.
    assert_eq!(err.kind, WireErrorKind::Timeout, "{err}");
    server.detach();
}

#[test]
fn corrupt_backend_length_prefix_is_a_protocol_error() {
    let (server, proxy) = chaotic_backend();
    // Flip a length byte of the very first backend frame (AuthenticationOk).
    proxy.push_plan(FaultPlan {
        to_client: LegFaults { corrupt_at: Some(1), ..LegFaults::clean() },
        ..FaultPlan::clean()
    });
    let Err(err) = PgWireBackend::connect_with(
        &proxy.addr().to_string(),
        &creds(),
        WireTimeouts::default(),
        RetryPolicy::no_retry(),
    ) else {
        panic!("corrupt stream accepted");
    };
    assert_eq!(err.kind, WireErrorKind::Protocol, "{err}");
    server.detach();
}

#[test]
fn non_idempotent_statements_are_not_replayed() {
    let (server, proxy) = chaotic_backend();
    let mut gw = gateway_via(&proxy, RetryPolicy::immediate(5));
    gw.execute_sql("CREATE TABLE t (x bigint)").unwrap();
    // Sever every live connection mid-flight on the next frame.
    proxy.set_default_plan(FaultPlan {
        to_upstream: LegFaults::sever_immediately(),
        ..FaultPlan::clean()
    });
    proxy.sever_active();
    let before = gw.reconnects();
    let err = gw.execute_sql("INSERT INTO t VALUES (1)").unwrap_err();
    assert_eq!(err.kind, WireErrorKind::NonIdempotent, "{err}");
    // No reconnect was attempted for the write: replaying could apply
    // the mutation twice.
    assert_eq!(gw.reconnects(), before);
    server.detach();
}

/// The acceptance demo: a Q application on one QIPC connection, the
/// backend dying and recovering underneath it — queries keep answering
/// on the SAME client connection throughout.
#[test]
fn q_client_survives_backend_crash_end_to_end() {
    let db = pgdb::Db::new();
    {
        let mut s = HyperQSession::with_direct(&db);
        let trades = Table::new(
            vec!["Symbol".into(), "Price".into()],
            vec![
                Value::Symbols(vec!["GOOG".into(), "IBM".into()]),
                Value::Floats(vec![100.0, 50.0]),
            ],
        )
        .unwrap();
        loader::load_table(&mut s, "trades", &trades).unwrap();
    }
    let server = PgServer::start(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let proxy = Arc::new(ChaosProxy::start(&server.addr.to_string()).unwrap());

    // Endpoint whose per-connection backend is a Gateway THROUGH the
    // chaos proxy, configured from the session's own knobs.
    let session_cfg = SessionConfig { retry: RetryPolicy::immediate(4), ..SessionConfig::default() };
    let proxy_addr = proxy.addr().to_string();
    let factory: BackendFactory = Arc::new(move || {
        let gw = PgWireBackend::connect_with(
            &proxy_addr,
            &creds(),
            session_cfg.wire,
            session_cfg.retry,
        )?;
        Ok(share(gw))
    });
    let config = EndpointConfig { session: session_cfg, ..EndpointConfig::default() };
    let ep = QipcEndpoint::start_with("127.0.0.1:0", config, factory).unwrap();
    let mut client = QipcClient::connect(&ep.addr.to_string(), "trader", "").unwrap();

    // Healthy round trip.
    let v = client.query("select Price from trades where Symbol=`GOOG").unwrap();
    assert!(matches!(v, Value::Table(_)), "{v:?}");

    // Backend crashes; the Gateway reconnects transparently — the Q
    // client sees a correct answer, not an error.
    proxy.sever_active();
    let v = client.query("select Price from trades where Symbol=`IBM").unwrap();
    assert!(matches!(v, Value::Table(_)), "{v:?}");

    // Backend goes DOWN hard: retries exhaust, and the client gets a
    // typed error frame on the still-open connection.
    proxy.set_default_plan(FaultPlan {
        to_upstream: LegFaults::sever_immediately(),
        ..FaultPlan::clean()
    });
    proxy.sever_active();
    let err = client.query("select Price from trades").unwrap_err();
    assert!(err.to_string().contains("retries-exhausted"), "{err}");

    // Backend comes back: the SAME client connection recovers.
    proxy.set_default_plan(FaultPlan::clean());
    let v = client.query("select Price from trades where Symbol=`GOOG").unwrap();
    assert!(matches!(v, Value::Table(_)), "{v:?}");

    ep.detach();
    server.detach();
}

#[test]
fn corrupt_qipc_frame_yields_an_error_frame() {
    let db = pgdb::Db::new();
    let ep = QipcEndpoint::start(db, "127.0.0.1:0", EndpointConfig::default()).unwrap();
    // Chaos proxy on the CLIENT leg this time.
    let proxy = ChaosProxy::start(&ep.addr.to_string()).unwrap();
    let hs_len = qipc::client_handshake("trader", "", 3).len() as u64;
    // Flip the most significant byte of the first query frame's length
    // field (little-endian u32 at bytes 4..8 of the QIPC header), so
    // the frame claims ~4 GiB.
    proxy.push_plan(FaultPlan {
        to_upstream: LegFaults { corrupt_at: Some(hs_len + 7), ..LegFaults::clean() },
        ..FaultPlan::clean()
    });
    let mut client = QipcClient::connect(&proxy.addr().to_string(), "trader", "").unwrap();
    let err = client.query("1+1").unwrap_err();
    assert!(err.to_string().contains("'ipc"), "{err}");
}

#[test]
fn degraded_endpoint_answers_queries_with_backend_errors() {
    // The factory cannot reach the backend at all: the Q client still
    // connects, and every query is answered with a typed error frame.
    let factory: BackendFactory =
        Arc::new(|| Err(WireError::connect("cannot connect to backend: refused")));
    let ep = QipcEndpoint::start_with("127.0.0.1:0", EndpointConfig::default(), factory).unwrap();
    let mut client = QipcClient::connect(&ep.addr.to_string(), "t", "").unwrap();
    for _ in 0..2 {
        let err = client.query("select from trades").unwrap_err();
        assert!(err.to_string().contains("backend: unavailable"), "{err}");
    }
    ep.detach();
}
