//! Shard planner test surface (ISSUE 10).
//!
//! 1. Table-driven *pure* planner tests: `planner::plan_select` over a
//!    hand-built catalog, asserting the `ShardPlan` kind and reason for
//!    every statement family — no cluster, no execution.
//! 2. Placement-policy tests: `decide_placement` from observed row
//!    counts and key-cardinality sketches.
//! 3. The fallback-rate regression gate: the fixed-seed 200-program
//!    fuzz slice on a 4-shard router must not fall back more often than
//!    the recorded baseline (PR 9 measured FALLBACK_BASELINE_PR9; the
//!    planner refactor must come in strictly below it).

use hyperq::shard::planner::{self, decide_placement, plan_select};
use hyperq::shard::{Mode, ShardCluster, ShardOpts, TableMeta};
use hyperq::{loader, share, HyperQSession, SessionConfig};
use pgdb::sql::ast::Stmt;
use pgdb::PgType;
use qgen::{gen_dataset, Coverage, ProgramGen};
use qlang::value::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Mutex;

/// Serializes tests that read deltas of the process-global metrics
/// registry, so concurrent planner tests cannot contaminate a window.
static COUNTERS: Mutex<()> = Mutex::new(());

fn opts() -> ShardOpts {
    ShardOpts { broadcast_threshold: 64, float_agg: false, stats: true, keys: HashMap::new() }
}

fn router(shards: usize) -> hyperq::ShardRouter {
    ShardCluster::in_process_with(shards, opts()).router().unwrap()
}

// ---------------------------------------------------------------------
// 1. The planner as a pure function: statement family → (kind, reason).
// ---------------------------------------------------------------------

/// A hand-built placement catalog: two co-partitionable fact tables, a
/// broadcast dimension, and a float-keyed partitioned table. No cluster
/// exists; the planner only ever sees this snapshot.
fn catalog() -> HashMap<String, TableMeta> {
    let fact_cols = vec![
        ("id".to_string(), PgType::Int8),
        ("grp".to_string(), PgType::Int8),
        ("sym".to_string(), PgType::Text),
        ("fv".to_string(), PgType::Float8),
    ];
    let mut cat = HashMap::new();
    cat.insert(
        "fact".to_string(),
        TableMeta::new(fact_cols.clone(), Some(0), Mode::Partitioned, 100),
    );
    cat.insert("fact2".to_string(), TableMeta::new(fact_cols, Some(0), Mode::Partitioned, 100));
    cat.insert(
        "dim".to_string(),
        TableMeta::new(
            vec![("id".to_string(), PgType::Int8), ("label".to_string(), PgType::Text)],
            Some(0),
            Mode::Broadcast,
            10,
        ),
    );
    cat.insert(
        "fkey".to_string(),
        TableMeta::new(
            vec![("fk".to_string(), PgType::Float8), ("v".to_string(), PgType::Int8)],
            Some(0),
            Mode::Partitioned,
            100,
        ),
    );
    cat
}

fn plan_of(sql: &str) -> (String, String) {
    let stmt = pgdb::sql::parse_statement(sql).expect("test SQL must parse");
    let Stmt::Select(sel) = stmt else { panic!("test SQL must be a SELECT: {sql}") };
    let plan = plan_select(&sel, &catalog(), &opts());
    (plan.kind().to_string(), plan.reason().to_string())
}

#[test]
fn planner_assigns_kind_and_reason_per_statement_family() {
    let cases: &[(&str, &str, &str)] = &[
        // No shard-managed tables at all.
        ("SELECT 1", "local", planner::OK_LOCAL),
        ("SELECT t.x FROM tmp AS t", "local", planner::OK_LOCAL),
        // Replicated inputs only: the coordinator's answer is exact.
        ("SELECT id, label FROM dim ORDER BY id", "broadcast", planner::OK_REPLICATED),
        // Single partitioned table: scatter + ordinal merge.
        ("SELECT id, grp FROM fact ORDER BY id LIMIT 5", "scatter", planner::OK_SCAN),
        // Partitioned probe against a broadcast build side.
        (
            "SELECT f.id, d.label FROM fact AS f INNER JOIN dim AS d ON f.id = d.id",
            "scatter",
            planner::OK_BROADCAST_JOIN,
        ),
        // Both sides hash-partitioned on the equated join key.
        (
            "SELECT a.id FROM fact AS a INNER JOIN fact2 AS b ON a.id = b.id",
            "shard_local",
            planner::OK_CO_PART,
        ),
        // The proof chains across legs.
        (
            "SELECT a.id FROM fact AS a INNER JOIN fact2 AS b ON a.id = b.id \
             INNER JOIN dim AS d ON a.id = d.id",
            "shard_local",
            planner::OK_CO_PART,
        ),
        // Join keys that are not both partition keys: unprovable.
        (
            "SELECT a.id FROM fact AS a INNER JOIN fact2 AS b ON a.grp = b.id",
            "fallback",
            planner::FB_JOIN_KEYS,
        ),
        // Float partition keys never establish co-location (NaN and
        // ±0.0 hash by representation but compare by value).
        (
            "SELECT a.id FROM fact AS a INNER JOIN fkey AS b ON a.fv = b.fk",
            "fallback",
            planner::FB_JOIN_KEYS,
        ),
        // Cross joins carry no co-location conjunct.
        ("SELECT a.id FROM fact AS a CROSS JOIN fact2 AS b", "fallback", planner::FB_JOIN_KEYS),
        // Distributive aggregation: two-phase with a re-fold.
        ("SELECT grp, count(*) FROM fact GROUP BY grp", "two_phase_agg", planner::OK_AGG),
        (
            "SELECT sum(f.id) AS s FROM fact AS f INNER JOIN dim AS d ON f.id = d.id",
            "two_phase_agg",
            planner::OK_AGG_JOIN,
        ),
        // Float aggregates are not exactly associative: fallback unless
        // HQ_SHARD_FLOAT_AGG opts in.
        ("SELECT sum(fv) FROM fact", "fallback", planner::FB_FLOAT_AGG),
        // No distributive decomposition exists for median.
        ("SELECT median(id) FROM fact", "fallback", planner::FB_NONDISTRIBUTIVE),
        // Non-decomposable statement families over shard-managed inputs
        // gather: exact input reconstruction, whole-statement evaluation.
        (
            "SELECT id, row_number() OVER (ORDER BY id) FROM fact",
            "gather",
            planner::FB_WINDOW,
        ),
        ("SELECT id FROM fact UNION SELECT id FROM fact2", "gather", planner::FB_SET_OP),
        (
            "SELECT id FROM fact WHERE id IN (SELECT id FROM dim)",
            "gather",
            planner::FB_SUBQUERY,
        ),
        ("SELECT count(DISTINCT sym) FROM fact", "gather", planner::FB_DISTINCT_AGG),
        // ... but a table outside the shard catalog (temp/CTAS product)
        // only exists on the coordinator, so the same families fall back.
        (
            "SELECT row_number() OVER (ORDER BY f.id) FROM fact AS f \
             INNER JOIN tmp AS t ON f.id = t.id",
            "fallback",
            planner::FB_WINDOW,
        ),
        // OFFSET needs a global skip; shards cannot skip locally.
        ("SELECT id FROM fact ORDER BY id LIMIT 5 OFFSET 5", "fallback", planner::FB_OFFSET),
        // `SELECT *` over a join cannot be expanded from the catalog.
        (
            "SELECT * FROM fact AS a INNER JOIN dim AS d ON a.id = d.id",
            "fallback",
            planner::FB_WILDCARD,
        ),
        // An ORDER BY expression that could capture an output alias.
        ("SELECT id + 1 AS x FROM fact ORDER BY x + 1", "fallback", planner::FB_ORDER_ALIAS),
        // A joined table unknown to the shard catalog.
        (
            "SELECT f.id FROM fact AS f INNER JOIN tmp AS t ON f.id = t.id",
            "fallback",
            planner::FB_UNREPLICATED,
        ),
        // Aggregates over joins whose ORDER BY the merge cannot resolve.
        (
            "SELECT count(*) AS c FROM fact AS a INNER JOIN fact2 AS b ON a.id = b.id \
             ORDER BY a.id",
            "fallback",
            planner::FB_AGG_JOIN,
        ),
    ];
    for (sql, kind, reason) in cases {
        let (k, r) = plan_of(sql);
        assert_eq!(
            (k.as_str(), r.as_str()),
            (*kind, *reason),
            "wrong plan for {sql:?}: got ({k}, {r}), want ({kind}, {reason})"
        );
    }
}

#[test]
fn planner_is_pure_over_the_snapshot() {
    // Same statement, different snapshot → different plan: flip `dim`
    // to partitioned and the broadcast join proof disappears.
    let sql = "SELECT f.id, d.label FROM fact AS f INNER JOIN dim AS d ON f.id = d.id";
    let stmt = pgdb::sql::parse_statement(sql).unwrap();
    let Stmt::Select(sel) = stmt else { unreachable!() };

    let (k, _) = plan_of(sql);
    assert_eq!(k, "scatter");

    let mut cat = catalog();
    cat.get_mut("dim").unwrap().mode = Mode::Partitioned;
    let plan = plan_select(&sel, &cat, &opts());
    // dim's partition key (id) is equated with fact's: still provable,
    // now as a co-partitioned join.
    assert_eq!((plan.kind(), plan.reason()), ("shard_local", planner::OK_CO_PART));

    // Equate a non-key column instead and the proof fails.
    let sql2 = "SELECT f.id, d.label FROM fact AS f INNER JOIN dim AS d ON f.grp = d.label";
    let Stmt::Select(sel2) = pgdb::sql::parse_statement(sql2).unwrap() else { unreachable!() };
    let plan2 = plan_select(&sel2, &cat, &opts());
    assert_eq!((plan2.kind(), plan2.reason()), ("fallback", planner::FB_JOIN_KEYS));
}

// ---------------------------------------------------------------------
// 2. Placement policy from observed statistics.
// ---------------------------------------------------------------------

#[test]
fn placement_follows_rows_and_key_cardinality() {
    let o = opts(); // threshold 64, stats on
    // Small tables broadcast regardless of cardinality.
    let p = decide_placement(64, Some(64), 4, &o);
    assert_eq!((p.mode, p.reason), (Mode::Broadcast, "small_table"));
    // Past the row threshold with a well-spread key: partition.
    let p = decide_placement(65, Some(60), 4, &o);
    assert_eq!((p.mode, p.reason), (Mode::Partitioned, "over_threshold"));
    // Past the row threshold but the key has fewer distinct values than
    // there are shards: hashing would leave shards empty — stay
    // broadcast while moderately sized.
    let p = decide_placement(100, Some(3), 4, &o);
    assert_eq!((p.mode, p.reason), (Mode::Broadcast, "low_key_cardinality"));
    // The low-cardinality override expires at 4x the threshold.
    let p = decide_placement(257, Some(3), 4, &o);
    assert_eq!((p.mode, p.reason), (Mode::Partitioned, "over_threshold"));
    // No observed stats (remote backend): pure row-count threshold.
    let p = decide_placement(100, None, 4, &o);
    assert_eq!((p.mode, p.reason), (Mode::Partitioned, "over_threshold"));
}

#[test]
fn stats_knob_reverts_to_pure_threshold() {
    let mut o = opts();
    o.stats = false;
    // Same inputs as the low-cardinality case above: with
    // HQ_SHARD_STATS=0 the sketch is ignored.
    let p = decide_placement(100, Some(3), 4, &o);
    assert_eq!((p.mode, p.reason), (Mode::Partitioned, "over_threshold"));
}

#[test]
fn threshold_zero_partitions_everything() {
    let mut o = opts();
    o.broadcast_threshold = 0;
    let p = decide_placement(1, Some(1), 4, &o);
    assert_eq!(p.mode, Mode::Partitioned);
}

// ---------------------------------------------------------------------
// 3. The session-level EXPLAIN SHARD surface.
// ---------------------------------------------------------------------

#[test]
fn session_explain_shard_surface() {
    let mut s = HyperQSession::new(share(router(2)), SessionConfig::default());
    {
        let mut be = s.backend().lock().unwrap();
        be.execute_sql("CREATE TABLE small (k bigint)").unwrap();
        be.execute_sql("INSERT INTO small VALUES (1), (2)").unwrap();
    }
    let rows = s.explain_shard("SELECT k FROM small ORDER BY k").unwrap();
    let names: Vec<&str> = rows.columns.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names, ["kind", "reason", "detail"]);
    assert_eq!(rows.data[0][0], pgdb::Cell::Text("broadcast".to_string()));
    assert_eq!(rows.data[0][1], pgdb::Cell::Text(planner::OK_REPLICATED.to_string()));
    // The per-table row surfaces placement and observed statistics.
    assert_eq!(rows.data[1][0], pgdb::Cell::Text("table:small".to_string()));
}

// ---------------------------------------------------------------------
// 4. Fallback-rate regression gate on the fixed-seed fuzz slice.
// ---------------------------------------------------------------------

const PROGRAMS_PER_DATASET: usize = 10;
const FUZZ_BUDGET: usize = 200;
const FUZZ_SEED: u64 = 20260807;

/// `shard_fallback_total` delta measured on this exact slice at PR 9
/// (pre-planner router). The refactor must land strictly below it.
/// (The planner currently measures 0: the slice's nine fallbacks were
/// all window-function translations, which now execute via gather.)
const FALLBACK_BASELINE_PR9: u64 = 9;

fn shard_session(ds_tables: &[(String, Table)]) -> HyperQSession {
    let mut s = HyperQSession::new(share(router(4)), SessionConfig::default());
    for (name, table) in ds_tables {
        loader::load_table(&mut s, name, table).unwrap();
    }
    s
}

#[test]
fn fuzz_slice_fallback_rate_gate() {
    let _serial = COUNTERS.lock().unwrap();
    let reg = obs::global_registry();
    let fallback0 = reg.counter_value("shard_fallback_total");
    let fanout0 = reg.counter_value("shard_fanout_total");

    let mut rng = StdRng::seed_from_u64(FUZZ_SEED);
    let mut gen = ProgramGen::new();
    let mut coverage = Coverage::default();
    let mut dataset = None;
    let mut session = None;
    for pi in 0..FUZZ_BUDGET {
        if pi % PROGRAMS_PER_DATASET == 0 {
            let ds = gen_dataset(&mut rng);
            session = Some(shard_session(&ds.tables));
            dataset = Some(ds);
        }
        let program = gen.gen_program(&mut rng, dataset.as_ref().unwrap(), &mut coverage);
        let s = session.as_mut().unwrap();
        for q in program.render() {
            let _ = s.execute(&q);
        }
    }

    let fallbacks = reg.counter_value("shard_fallback_total") - fallback0;
    let fanouts = reg.counter_value("shard_fanout_total") - fanout0;
    println!("fuzz-slice fallbacks: {fallbacks} (fanouts: {fanouts})");
    assert!(
        fallbacks < FALLBACK_BASELINE_PR9,
        "fallback-rate regression: {fallbacks} fallbacks on the fixed fuzz slice, \
         PR 9 baseline was {FALLBACK_BASELINE_PR9} — the planner must keep strictly below it"
    );
}
