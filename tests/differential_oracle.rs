//! Differential oracle suite: every statement below runs twice — once on
//! the reference Q interpreter, once through the full Hyper-Q
//! translate → SQL → pgdb pipeline — and the results must be Q-equal.
//!
//! This is the paper's §5 side-by-side framework wielded as a broad
//! oracle: q-sql selects, `by` aggregations, the join vocabulary
//! (aj/lj/ij/uj), two-valued null logic, and ordcol-sensitive queries
//! whose answers depend on row order.

use hyperq::side_by_side::SideBySide;
use hyperq_workload::taq::{generate_quotes, generate_trades, TaqConfig};
use qlang::value::{Table, Value};

fn taq_cfg() -> TaqConfig {
    TaqConfig { rows: 200, symbols: 4, days: 2, seed: 4242 }
}

/// Framework loaded with generated TAQ trades + quotes and a small
/// table whose columns carry typed nulls.
fn oracle() -> SideBySide {
    let db = pgdb::Db::new();
    let mut f = SideBySide::new(&db);
    f.load("trades", &generate_trades(&taq_cfg())).unwrap();
    f.load("quotes", &generate_quotes(&TaqConfig { rows: 600, ..taq_cfg() })).unwrap();
    let nullable = Table::new(
        vec!["Sym".into(), "Qty".into(), "Px".into()],
        vec![
            Value::Symbols(vec!["A".into(), "B".into(), "A".into(), "C".into(), "B".into()]),
            Value::Longs(vec![10, i64::MIN, 30, i64::MIN, 50]),
            Value::Floats(vec![1.5, 2.5, f64::NAN, 4.0, f64::NAN]),
        ],
    )
    .unwrap();
    f.load("nullable", &nullable).unwrap();
    // Static reference data keyed by Symbol, for lj/ij lookups.
    let refdata = Table::new(
        vec!["Symbol".into(), "Sector".into(), "Lot".into()],
        vec![
            Value::Symbols(vec!["AAPL".into(), "GOOG".into(), "IBM".into()]),
            Value::Symbols(vec!["tech".into(), "tech".into(), "services".into()]),
            Value::Longs(vec![100, 10, 50]),
        ],
    )
    .unwrap();
    f.load("refdata", &refdata).unwrap();
    f
}

/// The oracle statements. Kept as one list so the suite's breadth is
/// auditable in a single place; the count is pinned below.
const STATEMENTS: &[&str] = &[
    // --- q-sql selects and filters ---
    "select from trades",
    "select Symbol, Price from trades",
    "select Price from trades where Symbol=`GOOG",
    "select Price, Size from trades where Date=2016.06.26",
    "select from trades where Price within 50 150",
    "select Price from trades where Symbol in `GOOG`IBM, Size>100",
    "select Notional: Price*Size from trades where Size>500",
    "exec Price from trades where Symbol=`GOOG",
    "select from quotes where Ask>Bid",
    // --- plain aggregations ---
    "select mx: max Price, mn: min Price from trades",
    "select s: sum Size, a: avg Price from trades",
    "select n: count i from trades where Symbol=`IBM",
    "select spread: avg Ask-Bid from quotes",
    // --- `by` aggregations ---
    "select mx: max Price by Symbol from trades",
    "select s: sum Size by Date from trades",
    "select n: count i by Symbol from trades",
    "select vwap: (sum Price*Size) % sum Size by Symbol from trades",
    "select mx: max Price by Date, Symbol from trades",
    "select s: sum Size by 1000 xbar Size from trades",
    // --- joins: aj (as-of), lj/ij (keyed), uj (union) ---
    "aj[`Symbol`Time; select Symbol, Time, Price from trades; \
     select Symbol, Time, Bid, Ask from quotes]",
    "aj[`Symbol`Time; select Symbol, Time, Price from trades where Date=2016.06.26; \
     select Symbol, Time, Bid, Ask from quotes where Date=2016.06.26]",
    "trades lj 1!refdata",
    "trades ij 1!refdata",
    "select mx: max Price by Sector from trades lj 1!refdata",
    "(select Symbol, Price from trades where Size>900) uj \
     select Symbol, Price, Size from trades where Size<100",
    // --- null logic: typed nulls compare two-valued ---
    "select from nullable where Qty=0N",
    "select from nullable where Qty>20",
    "select s: sum Qty by Sym from nullable",
    "select n: count Px, m: count i from nullable",
    "select mx: max Px, mn: min Px from nullable",
    "update Qty: 0N from nullable where Sym=`A",
    // --- ordcol-sensitive: answers depend on row order ---
    "select Price, prevPx: prev Price from trades",
    "select d: deltas Price from trades where Symbol=`GOOG",
    "select open: first Price, close: last Price by Symbol from trades",
    "select Price, nextPx: next Price from trades where Symbol=`IBM",
    "`Price xdesc select from trades where Date=2016.06.26",
    "`Symbol`Time xasc select Symbol, Time, Price from trades",
    "select last Bid by Symbol from quotes",
];

#[test]
fn oracle_suite_has_at_least_thirty_statements() {
    assert!(
        STATEMENTS.len() >= 30,
        "oracle breadth regressed: {} statements",
        STATEMENTS.len()
    );
}

#[test]
fn all_oracle_statements_agree_between_engines() {
    let mut f = oracle();
    let failures = f.check_all(STATEMENTS);
    assert!(
        failures.is_empty(),
        "{} of {} statements diverged:\n{:#?}",
        failures.len(),
        STATEMENTS.len(),
        failures
    );
}

/// The oracle holds with the translation cache disabled too — the cached
/// and uncached pipelines must be indistinguishable to the application.
#[test]
fn oracle_statements_agree_with_translation_cache_disabled() {
    let mut f = oracle();
    f.hyperq.set_translation_cache(0);
    let failures = f.check_all(STATEMENTS);
    assert!(failures.is_empty(), "{failures:#?}");
}

/// Repeated execution (cache-hit path) returns the same answers as the
/// first (cache-miss) pass. Like every runner in this suite, it checks
/// the whole statement list and reports the complete divergence batch —
/// a bug in statement 3 must not mask one in statement 30.
#[test]
fn oracle_statements_are_stable_across_repeated_execution() {
    let mut f = oracle();
    let mut failures = Vec::new();
    for q in STATEMENTS {
        for pass in ["cold", "warm"] {
            if let Err(e) = f.assert_match(q) {
                failures.push(format!("[{pass}] {q}: {e}"));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} repeated-execution divergence(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}
