//! Cross-crate integration tests: the full Figure 1 pipeline, including
//! wire-level deployments where every byte crosses a real TCP socket.

use hyperq::endpoint::{EndpointConfig, QipcClient, QipcEndpoint};
use hyperq::gateway::{Credentials, PgWireBackend};
use hyperq::side_by_side::SideBySide;
use hyperq::{backend, loader, HyperQSession, SessionConfig};
use hyperq_workload::taq::{generate_quotes, generate_trades, TaqConfig};
use qlang::value::{Table, Value};

fn taq_cfg() -> TaqConfig {
    TaqConfig { rows: 300, symbols: 4, days: 2, seed: 2016 }
}

/// Paper Example 1: the prevailing-quote as-of join, validated against
/// the reference Q engine on generated TAQ data.
#[test]
fn paper_example_1_point_in_time_query_agrees_with_reference() {
    let db = pgdb::Db::new();
    let mut f = SideBySide::new(&db);
    f.load("trades", &generate_trades(&taq_cfg())).unwrap();
    f.load("quotes", &generate_quotes(&TaqConfig { rows: 900, ..taq_cfg() })).unwrap();
    let q = concat!(
        "aj[`Symbol`Time; ",
        "select Symbol, Time, Price from trades where Date=2016.06.26, Symbol in `GOOG`IBM; ",
        "select Symbol, Time, Bid, Ask from quotes where Date=2016.06.26]"
    );
    let v = f.assert_match(q).unwrap();
    match v {
        Value::Table(t) => {
            assert!(t.rows() > 0);
            assert!(t.column("Bid").is_some());
            assert!(t.column("Ask").is_some());
        }
        other => panic!("expected table, got {other:?}"),
    }
}

/// Paper Example 3 agrees between engines under both materialization
/// policies.
#[test]
fn paper_example_3_agrees_under_both_policies() {
    for policy in [
        algebrizer::MaterializationPolicy::Logical,
        algebrizer::MaterializationPolicy::Physical,
    ] {
        let db = pgdb::Db::new();
        let cfg = SessionConfig { policy, ..SessionConfig::default() };
        let mut f = SideBySide::with_config(&db, cfg);
        f.load("trades", &generate_trades(&taq_cfg())).unwrap();
        f.assert_match(concat!(
            "f: {[Sym] dt: select Price from trades where Symbol=Sym; ",
            ":select max Price from dt}; f[`GOOG]"
        ))
        .unwrap_or_else(|e| panic!("policy {policy:?}: {e}"));
    }
}

/// The full wire topology: QIPC client → Hyper-Q endpoint → translation →
/// pgdb over the PG v3 TCP protocol (Gateway), results pivoted back.
#[test]
fn full_wire_topology_qipc_to_pgv3() {
    // Backend DB + PG v3 server.
    let db = pgdb::Db::new();
    let mut bootstrap = HyperQSession::with_direct(&db);
    loader::load_table(&mut bootstrap, "trades", &generate_trades(&taq_cfg())).unwrap();
    let pg = pgdb::server::PgServer::start(
        db.clone(),
        "127.0.0.1:0",
        pgdb::server::ServerConfig::default(),
    )
    .unwrap();

    // A Hyper-Q session whose backend is the remote PG server (not the
    // in-process engine) — the deployment shape of the paper.
    let gateway = PgWireBackend::connect(
        &pg.addr.to_string(),
        &Credentials { user: "hyperq".into(), password: String::new(), database: "hist".into() },
    )
    .unwrap();
    let mut session =
        HyperQSession::new(backend::share(gateway), SessionConfig::default());
    let v = session.execute("select mx: max Price by Symbol from trades").unwrap();
    match v {
        Value::KeyedTable(k) => assert!(k.key.rows() > 0),
        other => panic!("expected keyed table, got {other:?}"),
    }

    // Cross-check against the in-process path.
    let mut direct = HyperQSession::with_direct(&db);
    let v2 = direct.execute("select mx: max Price by Symbol from trades").unwrap();
    let v1 = session.execute("select mx: max Price by Symbol from trades").unwrap();
    assert!(v1.q_eq(&v2), "wire and direct backends must agree");
    pg.detach();
}

/// QIPC endpoint serves concurrent clients with isolated sessions.
#[test]
fn endpoint_serves_concurrent_clients() {
    let db = pgdb::Db::new();
    let mut bootstrap = HyperQSession::with_direct(&db);
    loader::load_table(&mut bootstrap, "trades", &generate_trades(&taq_cfg())).unwrap();
    let ep = QipcEndpoint::start(db, "127.0.0.1:0", EndpointConfig::default()).unwrap();
    let addr = ep.addr.to_string();

    let handles: Vec<_> = (0..4)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = QipcClient::connect(&addr, &format!("user{i}"), "").unwrap();
                c.query(&format!("threshold: {}.0", 40 + i)).unwrap();
                let v = c.query("exec count i from trades where Price > threshold").unwrap();
                assert!(matches!(v, Value::Atom(_) | Value::Longs(_)), "got {v:?}");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    ep.detach();
}

/// Large result sets travel compressed over QIPC (paper §3.1) and
/// decode transparently at the client.
#[test]
fn large_results_round_trip_compressed_over_the_wire() {
    let db = pgdb::Db::new();
    let mut bootstrap = HyperQSession::with_direct(&db);
    loader::load_table(
        &mut bootstrap,
        "trades",
        &generate_trades(&TaqConfig { rows: 5000, symbols: 4, days: 2, seed: 1 }),
    )
    .unwrap();
    let ep = QipcEndpoint::start(db, "127.0.0.1:0", EndpointConfig::default()).unwrap();
    let mut client = QipcClient::connect(&ep.addr.to_string(), "t", "").unwrap();
    let v = client.query("select Symbol, Price, Size from trades").unwrap();
    match v {
        Value::Table(t) => assert_eq!(t.rows(), 5000),
        other => panic!("expected table, got {other:?}"),
    }
    ep.detach();
}

/// Q update semantics survive the whole pipeline: output changed, source
/// untouched (the paper's §2.2 warning case).
#[test]
fn update_does_not_mutate_backend_state() {
    let db = pgdb::Db::new();
    let mut s = HyperQSession::with_direct(&db);
    let t = Table::new(
        vec!["Sym".into(), "Px".into()],
        vec![
            Value::Symbols(vec!["A".into(), "B".into()]),
            Value::Floats(vec![1.0, 2.0]),
        ],
    )
    .unwrap();
    loader::load_table(&mut s, "t", &t).unwrap();
    let updated = s.execute("update Px: 100.0 from t").unwrap();
    match updated {
        Value::Table(u) => assert!(u.column("Px").unwrap().q_eq(&Value::Floats(vec![100.0, 100.0]))),
        other => panic!("expected table, got {other:?}"),
    }
    let source = s.execute("exec Px from t").unwrap();
    assert!(source.q_eq(&Value::Floats(vec![1.0, 2.0])), "backend state must be unchanged");
}

/// Ordered-list semantics: row order survives translation, execution and
/// pivoting, repeatedly.
#[test]
fn ordering_is_stable_across_round_trips() {
    let db = pgdb::Db::new();
    let mut s = HyperQSession::with_direct(&db);
    loader::load_table(&mut s, "trades", &generate_trades(&taq_cfg())).unwrap();
    let first = s.execute("select Time, Price from trades").unwrap();
    for _ in 0..3 {
        let again = s.execute("select Time, Price from trades").unwrap();
        assert!(first.q_eq(&again), "repeated reads must preserve identical order");
    }
}

/// Two-valued logic end to end: Q's null-equals-null visible through the
/// whole translated pipeline.
#[test]
fn two_valued_null_logic_end_to_end() {
    let db = pgdb::Db::new();
    let mut f = SideBySide::new(&db);
    let t = Table::new(
        vec!["Sym".into(), "Px".into()],
        vec![
            Value::Symbols(vec!["".into(), "A".into(), "".into()]),
            Value::Floats(vec![1.0, 2.0, f64::NAN]),
        ],
    )
    .unwrap();
    f.load("t", &t).unwrap();
    // Null symbol matches null symbol.
    f.assert_match("select Px from t where Sym=`").unwrap();
    // <> under 2VL.
    f.assert_match("select Px from t where Sym<>`").unwrap();
    // Aggregates skip nulls identically.
    f.assert_match("select s: sum Px, n: count i from t").unwrap();
}

/// Metadata cache ablation: identical results, fewer backend catalog
/// queries.
#[test]
fn metadata_cache_reduces_backend_lookups_without_changing_results() {
    let db = pgdb::Db::new();
    // Translation caching off: repeats must reach the MDI so the
    // *metadata* cache is what serves them.
    let mut warm = HyperQSession::with_direct_config(
        &db,
        SessionConfig { translation_cache: 0, ..Default::default() },
    );
    loader::load_table(&mut warm, "trades", &generate_trades(&taq_cfg())).unwrap();
    let q = "select mx: max Price by Symbol from trades";
    let baseline = warm.execute(q).unwrap();
    for _ in 0..5 {
        let v = warm.execute(q).unwrap();
        assert!(v.q_eq(&baseline));
    }
    let stats = warm.cache_stats();
    assert!(stats.hits >= 4, "cache must serve repeats: {stats:?}");

    let mut cold = HyperQSession::with_direct_config(
        &db,
        SessionConfig { metadata_cache_ttl: std::time::Duration::ZERO, ..Default::default() },
    );
    let v = cold.execute(q).unwrap();
    assert!(v.q_eq(&baseline), "cache must be semantically transparent");
}
