//! Shard-count differential oracle (ISSUE 8's headline deliverable).
//!
//! The `ShardRouter` promises results *bit-identical* to single-node
//! execution at any shard count: scatter scans interleave back into
//! insertion order via the hidden ordinal, re-aggregated partials merge
//! on an engine-semantics scratch instance, and everything unprovable
//! falls back to the coordinator's full copy. This suite enforces the
//! promise three ways:
//!
//! 1. direct SQL structural equality (`colstore::structurally_equal`)
//!    between a plain single-node backend and routers at 1, 2 and 4
//!    shards — scans, ordered merges, distributive re-aggregation,
//!    broadcast joins, every fallback shape, and identical error
//!    surfaces;
//! 2. the full 38-statement Q differential-oracle list through the
//!    complete translate → SQL → scatter-gather pipeline at 1, 2 and 4
//!    shards, judged against the reference interpreter;
//! 3. a 200-program qgen fuzz slice executed side by side on 1-, 2- and
//!    4-shard routers, asserting cross-shard-count agreement statement
//!    by statement.

use hyperq::shard::{ShardCluster, ShardOpts};
use hyperq::side_by_side::{values_agree, SideBySide};
use hyperq::{loader, share, Backend, DirectBackend, HyperQSession, SessionConfig};
use hyperq_workload::taq::{generate_quotes, generate_trades, TaqConfig};
use pgdb::{Batch, BatchQueryResult};
use qengine::Interp;
use qgen::{gen_dataset, Coverage, ProgramGen};
use qlang::ast::Expr;
use qlang::value::{Table, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Deterministic knobs: tests must not depend on ambient `HQ_SHARD_*`.
fn opts() -> ShardOpts {
    ShardOpts { broadcast_threshold: 64, float_agg: false, stats: true, keys: HashMap::new() }
}

fn router(shards: usize) -> hyperq::ShardRouter {
    ShardCluster::in_process_with(shards, opts()).router().unwrap()
}

// ---------------------------------------------------------------------
// 1. Direct SQL: single node vs 1/2/4-shard routers, bit for bit.
// ---------------------------------------------------------------------

/// Identical setup run through every backend. `fact` (150 rows, one
/// INSERT) partitions; `dim` (8 rows) broadcasts.
fn setup_sql() -> Vec<String> {
    let mut out = vec![
        "CREATE TABLE fact (id bigint, grp bigint, sym varchar, qty bigint, px double precision)"
            .to_string(),
        "CREATE TABLE dim (k bigint, label varchar)".to_string(),
    ];
    let syms = ["AA", "BB", "CC", "DD"];
    let rows: Vec<String> = (0..150)
        .map(|i| {
            let sym = if i % 13 == 0 { "NULL".to_string() } else { format!("'{}'", syms[i % 4]) };
            let qty = if i % 11 == 0 { "NULL".to_string() } else { format!("{}", (i * 7) % 100) };
            let px = match i % 17 {
                0 => "NULL".to_string(),
                1 => "(0.0 / 0.0)".to_string(), // NaN: float aggs must stay exact via fallback
                _ => format!("{}.25", i % 50),
            };
            format!("({i}, {}, {sym}, {qty}, {px})", i % 10)
        })
        .collect();
    out.push(format!("INSERT INTO fact VALUES {}", rows.join(", ")));
    let dim: Vec<String> = (0..8).map(|k| format!("({k}, 'L{k}')")).collect();
    out.push(format!("INSERT INTO dim VALUES {}", dim.join(", ")));
    out
}

/// SQL shapes under test. Scatter paths and fallback paths both appear:
/// the differential does not care *how* a statement was routed, only
/// that the answer (or the error) is indistinguishable from single-node.
const SQL_STATEMENTS: &[&str] = &[
    // pass-through scatter: scans, filters, projections
    "SELECT * FROM fact",
    "SELECT id, qty FROM fact WHERE grp > 5",
    "SELECT id, px * 2.0 AS v FROM fact WHERE sym = 'AA'",
    "SELECT id FROM fact WHERE qty IS NULL",
    // k-way ordered merges, including DESC, LIMIT, and NULL keys
    "SELECT id, grp FROM fact ORDER BY grp, id",
    "SELECT id, qty FROM fact ORDER BY qty DESC, id LIMIT 10",
    "SELECT id FROM fact ORDER BY sym, id LIMIT 25",
    "SELECT sym, id FROM fact ORDER BY id DESC",
    // distributive re-aggregation
    "SELECT count(*) AS n, sum(qty) AS s, min(qty) AS mn, max(qty) AS mx, avg(qty) AS a FROM fact",
    "SELECT grp, count(*) AS n, sum(qty) AS s FROM fact GROUP BY grp ORDER BY grp",
    "SELECT sym, avg(qty) AS a FROM fact GROUP BY sym ORDER BY sym",
    "SELECT grp, max(qty) AS mx FROM fact GROUP BY grp",
    "SELECT sym, sum(qty) AS s FROM fact GROUP BY sym HAVING count(*) > 3 ORDER BY s DESC, sym",
    "SELECT grp, sym, count(*) AS n FROM fact GROUP BY grp, sym ORDER BY grp, sym",
    "SELECT sum(qty) + count(*) AS t FROM fact",
    "SELECT count(px) AS with_px FROM fact",
    // empty input: count 0 / NULL sum / NULL min must survive the merge
    "SELECT count(*) AS n, sum(qty) AS s, min(qty) AS m FROM fact WHERE id < 0",
    "SELECT grp, sum(qty) AS s FROM fact WHERE grp > 1000 GROUP BY grp",
    // aggregation over a subquery leaf
    "SELECT sum(s) AS total FROM (SELECT qty AS s FROM fact WHERE grp < 8) AS t",
    "SELECT s FROM (SELECT qty + id AS s FROM fact) AS t ORDER BY s LIMIT 5",
    // broadcast joins stay shard-local
    "SELECT id, label FROM fact INNER JOIN dim ON grp = k ORDER BY id",
    "SELECT id, label FROM fact LEFT OUTER JOIN dim ON grp = k",
    "SELECT label, id FROM fact INNER JOIN dim ON grp = k WHERE qty > 50 ORDER BY id LIMIT 7",
    // provably-unsafe shapes: must fall back, answers still identical
    "SELECT min(px) AS mn, max(px) AS mx, sum(px) AS s, avg(px) AS a FROM fact",
    "SELECT count(DISTINCT sym) AS d FROM fact",
    "SELECT id FROM fact ORDER BY id LIMIT 5 OFFSET 3",
    "SELECT id FROM fact WHERE grp = 1 UNION ALL SELECT id FROM fact WHERE grp = 2",
    "SELECT a.id FROM fact AS a INNER JOIN fact AS b ON a.id = b.id ORDER BY a.id LIMIT 5",
    "SELECT qty, sum(qty) AS s FROM fact GROUP BY grp ORDER BY qty + grp LIMIT 4",
    // identical error surfaces
    "SELECT qty / 0 AS boom FROM fact",
    "SELECT nosuch FROM fact",
    "SELECT id FROM nosuchtable",
    "INSERT INTO ghost VALUES (1)",
    "CREATE TABLE dim (k bigint)",
    // DDL / DML lifecycle through the router
    "CREATE TABLE t2 (a bigint, b varchar)",
    "INSERT INTO t2 VALUES (1, 'x'), (2, 'y'), (3, NULL)",
    "SELECT a, b FROM t2 ORDER BY a",
    "SELECT count(*) AS n FROM t2",
    "DROP TABLE t2",
    "SELECT a FROM t2",
];

enum SqlOutcome {
    Batch(Batch),
    Command(String),
    Error(String),
}

fn run_sql(b: &mut dyn Backend, sql: &str) -> SqlOutcome {
    match b.execute_sql_batch(sql) {
        Ok(Some(BatchQueryResult::Batch(batch))) => SqlOutcome::Batch(batch),
        Ok(Some(BatchQueryResult::Command(t))) => SqlOutcome::Command(t),
        Ok(None) => panic!("backend refused the batch path for {sql}"),
        Err(e) => SqlOutcome::Error(e.to_string()),
    }
}

fn agree(a: &SqlOutcome, b: &SqlOutcome) -> bool {
    match (a, b) {
        (SqlOutcome::Batch(x), SqlOutcome::Batch(y)) => x.structurally_equal(y),
        (SqlOutcome::Command(x), SqlOutcome::Command(y)) => x == y,
        (SqlOutcome::Error(x), SqlOutcome::Error(y)) => x == y,
        _ => false,
    }
}

fn describe(o: &SqlOutcome) -> String {
    match o {
        SqlOutcome::Batch(b) => format!("batch of {} rows", b.rows()),
        SqlOutcome::Command(t) => format!("command {t:?}"),
        SqlOutcome::Error(e) => format!("error {e:?}"),
    }
}

#[test]
fn sql_differential_is_bit_identical_at_one_two_and_four_shards() {
    let single_db = pgdb::Db::new();
    let mut backends: Vec<(String, Box<dyn Backend>)> =
        vec![("single-node".into(), Box::new(DirectBackend::new(&single_db)))];
    for shards in [1usize, 2, 4] {
        backends.push((format!("{shards}-shard router"), Box::new(router(shards))));
    }
    for stmt in setup_sql() {
        for (name, b) in &mut backends {
            if let SqlOutcome::Error(e) = run_sql(b.as_mut(), &stmt) {
                panic!("{name}: setup statement failed: {e}\n{stmt}");
            }
        }
    }
    let mut failures = Vec::new();
    for sql in SQL_STATEMENTS {
        let outcomes: Vec<SqlOutcome> =
            backends.iter_mut().map(|(_, b)| run_sql(b.as_mut(), sql)).collect();
        for (i, o) in outcomes.iter().enumerate().skip(1) {
            if !agree(&outcomes[0], o) {
                failures.push(format!(
                    "{}: {} vs single-node {} for {sql}",
                    backends[i].0,
                    describe(o),
                    describe(&outcomes[0]),
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} shard-count divergence(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Sanity guard on the fixture: the differential above only proves
/// anything if the interesting statements really scatter. Pin the
/// routing decisions through the metrics deltas.
#[test]
fn differential_fixture_really_scatters() {
    let cluster = ShardCluster::in_process_with(4, opts());
    let mut r = cluster.router().unwrap();
    for stmt in setup_sql() {
        if let SqlOutcome::Error(e) = run_sql(&mut r, &stmt) {
            panic!("setup failed: {e}");
        }
    }
    use hyperq::shard::Mode;
    assert_eq!(cluster.table_meta("fact").unwrap().mode, Mode::Partitioned);
    assert_eq!(cluster.table_meta("dim").unwrap().mode, Mode::Broadcast);
    let reg = obs::global_registry();
    let fanout = reg.counter_value("shard_fanout_total");
    let fallback = reg.counter_value("shard_fallback_total");
    run_sql(&mut r, "SELECT id, qty FROM fact ORDER BY qty DESC, id LIMIT 10");
    run_sql(&mut r, "SELECT grp, sum(qty) AS s FROM fact GROUP BY grp ORDER BY grp");
    assert_eq!(reg.counter_value("shard_fanout_total"), fanout + 2, "scans/aggs must scatter");
    assert_eq!(reg.counter_value("shard_fallback_total"), fallback, "no silent fallback");
    // DISTINCT aggregates do not decompose into partials, but their
    // inputs are shard-managed: they gather (exact input
    // reconstruction) instead of falling back to the coordinator.
    let gathers = reg.counter_value("shard_gather_total");
    run_sql(&mut r, "SELECT count(DISTINCT sym) AS d FROM fact");
    assert_eq!(
        reg.counter_value("shard_gather_total"),
        gathers + 1,
        "DISTINCT aggregates must execute via gather"
    );
    assert_eq!(reg.counter_value("shard_fallback_total"), fallback, "no silent fallback");
}

// ---------------------------------------------------------------------
// 2. The 38-statement Q oracle through the full pipeline, per shard count.
// ---------------------------------------------------------------------

fn taq_cfg() -> TaqConfig {
    TaqConfig { rows: 200, symbols: 4, days: 2, seed: 4242 }
}

/// Same fixture as `tests/differential_oracle.rs`, loaded through a
/// router-backed session: trades (200 rows) and quotes (600) partition,
/// nullable (5) and refdata (3) broadcast.
fn shard_oracle(shards: usize) -> SideBySide {
    let mut f = SideBySide {
        reference: Interp::new(),
        hyperq: HyperQSession::new(share(router(shards)), SessionConfig::default()),
    };
    f.load("trades", &generate_trades(&taq_cfg())).unwrap();
    f.load("quotes", &generate_quotes(&TaqConfig { rows: 600, ..taq_cfg() })).unwrap();
    let nullable = Table::new(
        vec!["Sym".into(), "Qty".into(), "Px".into()],
        vec![
            Value::Symbols(vec!["A".into(), "B".into(), "A".into(), "C".into(), "B".into()]),
            Value::Longs(vec![10, i64::MIN, 30, i64::MIN, 50]),
            Value::Floats(vec![1.5, 2.5, f64::NAN, 4.0, f64::NAN]),
        ],
    )
    .unwrap();
    f.load("nullable", &nullable).unwrap();
    let refdata = Table::new(
        vec!["Symbol".into(), "Sector".into(), "Lot".into()],
        vec![
            Value::Symbols(vec!["AAPL".into(), "GOOG".into(), "IBM".into()]),
            Value::Symbols(vec!["tech".into(), "tech".into(), "services".into()]),
            Value::Longs(vec![100, 10, 50]),
        ],
    )
    .unwrap();
    f.load("refdata", &refdata).unwrap();
    f
}

/// The oracle statement list, verbatim from `differential_oracle.rs`.
const ORACLE_STATEMENTS: &[&str] = &[
    "select from trades",
    "select Symbol, Price from trades",
    "select Price from trades where Symbol=`GOOG",
    "select Price, Size from trades where Date=2016.06.26",
    "select from trades where Price within 50 150",
    "select Price from trades where Symbol in `GOOG`IBM, Size>100",
    "select Notional: Price*Size from trades where Size>500",
    "exec Price from trades where Symbol=`GOOG",
    "select from quotes where Ask>Bid",
    "select mx: max Price, mn: min Price from trades",
    "select s: sum Size, a: avg Price from trades",
    "select n: count i from trades where Symbol=`IBM",
    "select spread: avg Ask-Bid from quotes",
    "select mx: max Price by Symbol from trades",
    "select s: sum Size by Date from trades",
    "select n: count i by Symbol from trades",
    "select vwap: (sum Price*Size) % sum Size by Symbol from trades",
    "select mx: max Price by Date, Symbol from trades",
    "select s: sum Size by 1000 xbar Size from trades",
    "aj[`Symbol`Time; select Symbol, Time, Price from trades; \
     select Symbol, Time, Bid, Ask from quotes]",
    "aj[`Symbol`Time; select Symbol, Time, Price from trades where Date=2016.06.26; \
     select Symbol, Time, Bid, Ask from quotes where Date=2016.06.26]",
    "trades lj 1!refdata",
    "trades ij 1!refdata",
    "select mx: max Price by Sector from trades lj 1!refdata",
    "(select Symbol, Price from trades where Size>900) uj \
     select Symbol, Price, Size from trades where Size<100",
    "select from nullable where Qty=0N",
    "select from nullable where Qty>20",
    "select s: sum Qty by Sym from nullable",
    "select n: count Px, m: count i from nullable",
    "select mx: max Px, mn: min Px from nullable",
    "update Qty: 0N from nullable where Sym=`A",
    "select Price, prevPx: prev Price from trades",
    "select d: deltas Price from trades where Symbol=`GOOG",
    "select open: first Price, close: last Price by Symbol from trades",
    "select Price, nextPx: next Price from trades where Symbol=`IBM",
    "`Price xdesc select from trades where Date=2016.06.26",
    "`Symbol`Time xasc select Symbol, Time, Price from trades",
    "select last Bid by Symbol from quotes",
];

#[test]
fn oracle_agrees_at_one_two_and_four_shards() {
    for shards in [1usize, 2, 4] {
        let mut f = shard_oracle(shards);
        let failures = f.check_all(ORACLE_STATEMENTS);
        assert!(
            failures.is_empty(),
            "HQ_SHARDS={shards}: {} of {} oracle statements diverged:\n{:#?}",
            failures.len(),
            ORACLE_STATEMENTS.len(),
            failures
        );
    }
}

// ---------------------------------------------------------------------
// 3. qgen fuzz slice: 200 programs side by side at 1, 2 and 4 shards.
// ---------------------------------------------------------------------

/// Programs per generated dataset, mirroring `qgen::run_fuzz`.
const PROGRAMS_PER_DATASET: usize = 10;
const FUZZ_BUDGET: usize = 200;
const FUZZ_SEED: u64 = 20260807;

fn shard_sessions(ds_tables: &[(String, Table)]) -> Vec<(usize, HyperQSession)> {
    [1usize, 2, 4]
        .into_iter()
        .map(|shards| {
            let mut s = HyperQSession::new(share(router(shards)), SessionConfig::default());
            for (name, table) in ds_tables {
                loader::load_table(&mut s, name, table).unwrap();
            }
            (shards, s)
        })
        .collect()
}

/// Successful assignments collapse before comparison (their return value
/// is representational), exactly like the tri-executor `BatchDriver`.
fn is_assignment(q: &str) -> bool {
    qlang::parse(q)
        .map(|stmts| {
            stmts
                .last()
                .is_some_and(|e| matches!(e, Expr::Assign { .. } | Expr::IndexAssign { .. }))
        })
        .unwrap_or(false)
}

#[test]
fn fuzz_slice_agrees_across_shard_counts() {
    let mut rng = StdRng::seed_from_u64(FUZZ_SEED);
    let mut gen = ProgramGen::new();
    let mut coverage = Coverage::default();
    let mut dataset = None;
    let mut sessions: Vec<(usize, HyperQSession)> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut programs = 0usize;

    for pi in 0..FUZZ_BUDGET {
        if pi % PROGRAMS_PER_DATASET == 0 {
            let ds = gen_dataset(&mut rng);
            sessions = shard_sessions(&ds.tables);
            dataset = Some(ds);
        }
        let ds = dataset.as_ref().unwrap();
        let program = gen.gen_program(&mut rng, ds, &mut coverage);
        programs += 1;
        let mut diverged = false;
        for q in program.render() {
            let normalize = is_assignment(&q);
            let mut results = sessions.iter_mut().map(|(shards, s)| (*shards, s.execute(&q)));
            let (_, baseline) = results.next().unwrap();
            for (shards, r) in results {
                let ok = match (&baseline, &r) {
                    (Ok(a), Ok(b)) => normalize || values_agree(a, b),
                    (Err(_), Err(_)) => true,
                    _ => false,
                };
                if !ok {
                    diverged = true;
                    failures.push(format!(
                        "program {pi}, {shards} shards vs 1: `{q}`\n  1-shard: {:?}\n  {shards}-shard: {:?}",
                        baseline, r
                    ));
                }
            }
        }
        if diverged {
            // Divergence may have forked session state; rebuild all
            // three so later programs are judged from a clean slate.
            sessions = shard_sessions(&dataset.as_ref().unwrap().tables);
        }
    }
    assert_eq!(programs, FUZZ_BUDGET);
    assert!(
        failures.is_empty(),
        "{} cross-shard-count divergence(s) in {FUZZ_BUDGET} programs:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
