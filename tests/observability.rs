//! End-to-end observability: a traced query yields a six-stage span
//! tree with non-zero durations, the same activity is visible through
//! BOTH metrics exposure paths (the pgdb server's Prometheus admin
//! query and the QIPC endpoint's `\metrics` system command), and slow
//! queries land in the ring-buffer slow-query log.

use hyperq::endpoint::{EndpointConfig, QipcClient, QipcEndpoint};
use hyperq::gateway::{Credentials, PgWireBackend};
use hyperq::{loader, Backend, HyperQSession, SessionConfig, SpanEvent, Stage};
use hyperq_workload::taq::{generate_trades, TaqConfig};
use pgdb::QueryResult;
use std::time::Duration;

fn taq_cfg() -> TaqConfig {
    TaqConfig { rows: 150, symbols: 3, days: 2, seed: 7 }
}

fn session_with_trades(db: &pgdb::Db) -> HyperQSession {
    let mut s = HyperQSession::with_direct(db);
    loader::load_table(&mut s, "trades", &generate_trades(&taq_cfg())).unwrap();
    s
}

/// The acceptance demo: one traced query produces a span tree covering
/// all six pipeline stages, each with a non-zero duration.
#[test]
fn traced_query_covers_all_six_stages_with_nonzero_durations() {
    let db = pgdb::Db::new();
    let mut s = session_with_trades(&db);
    let (v, trace) =
        s.execute_observed("select mx: max Price by Symbol from trades where Size>100").unwrap();
    assert!(matches!(v, qlang::Value::KeyedTable(_) | qlang::Value::Table(_)), "{v:?}");

    assert!(trace.covers_all_stages(), "stages: {:?}", trace.stage_names());
    for stage in Stage::ALL {
        let span = trace.span(stage).unwrap();
        assert!(
            span.duration > Duration::ZERO,
            "stage {} has zero duration:\n{}",
            stage.name(),
            trace.render()
        );
    }
    assert!(trace.total > Duration::ZERO);
    assert!(!trace.sql.is_empty(), "generated SQL recorded on the trace");
    // First execution: the translation cache was consulted and missed.
    assert!(!trace.cache_hit);
    assert!(trace.has_event(|e| matches!(e, SpanEvent::CacheMiss)));
    // The execute span carries one child per emitted SQL statement.
    let exec = trace.span(Stage::Execute).unwrap();
    assert_eq!(exec.children.len(), trace.sql.len());
    assert!(exec.rows > 0, "execute span records returned rows");
}

/// Re-running the same statement is served from the translation cache
/// and the trace says so.
#[test]
fn repeated_query_traces_as_a_cache_hit() {
    let db = pgdb::Db::new();
    let mut s = session_with_trades(&db);
    let q = "select sum Size by Symbol from trades";
    s.execute_observed(q).unwrap();
    let (_, trace) = s.execute_observed(q).unwrap();
    assert!(trace.cache_hit, "{}", trace.render());
    assert!(trace.has_event(|e| matches!(e, SpanEvent::CacheHit)));
    assert!(trace.covers_all_stages());
}

/// `last_trace` retains the most recent span tree, including failures.
#[test]
fn failed_queries_are_traced_and_counted() {
    let db = pgdb::Db::new();
    let mut s = session_with_trades(&db);
    let reg = obs::global_registry();
    let errors_before = reg.counter_value("hyperq_query_errors_total");
    assert!(s.execute_observed("select from no_such_table").is_err());
    assert!(s.last_trace().is_some());
    assert_eq!(reg.counter_value("hyperq_query_errors_total"), errors_before + 1);
}

/// Counters and per-stage histograms aggregate in the global registry
/// and appear in the Prometheus rendering.
#[test]
fn global_registry_aggregates_query_metrics() {
    let db = pgdb::Db::new();
    let mut s = session_with_trades(&db);
    let reg = obs::global_registry();
    let queries_before = reg.counter_value("hyperq_queries_total");
    s.execute("select from trades where Symbol=`GOOG").unwrap();
    s.execute("select avg Price by Symbol from trades").unwrap();
    assert_eq!(reg.counter_value("hyperq_queries_total"), queries_before + 2);

    let dump = reg.render_prometheus();
    for metric in [
        "hyperq_queries_total",
        "hyperq_query_seconds_count",
        "hyperq_stage_seconds_bucket{stage=\"parse\",le=",
        "hyperq_stage_seconds_bucket{stage=\"pivot\",le=",
        "hyperq_translation_cache_misses_total",
        "hyperq_rows_total",
    ] {
        assert!(dump.contains(metric), "missing {metric} in dump:\n{dump}");
    }
}

/// Exposure path 1: the pgdb server answers `SHOW metrics` (and
/// `\metrics`) over the PG v3 wire with the Prometheus dump.
#[test]
fn prometheus_dump_is_served_over_the_pg_wire() {
    let db = pgdb::Db::new();
    let mut s = session_with_trades(&db);
    s.execute("select max Price from trades").unwrap();

    let server =
        pgdb::server::PgServer::start(db, "127.0.0.1:0", pgdb::server::ServerConfig::default())
            .unwrap();
    let creds =
        Credentials { user: "ops".into(), password: String::new(), database: "hist".into() };
    let mut gw = PgWireBackend::connect(&server.addr.to_string(), &creds).unwrap();
    match gw.execute_sql("SHOW metrics").unwrap() {
        QueryResult::Rows(rows) => {
            let lines: Vec<String> = rows
                .data
                .iter()
                .map(|r| match &r[0] {
                    pgdb::Cell::Text(s) => s.clone(),
                    other => panic!("expected text cell, got {other:?}"),
                })
                .collect();
            let dump = lines.join("\n");
            assert!(dump.contains("# TYPE"), "{dump}");
            assert!(dump.contains("hyperq_queries_total"), "{dump}");
            assert!(dump.contains("hyperq_stage_seconds"), "{dump}");
        }
        other => panic!("expected rows, got {other:?}"),
    }
    server.detach();
}

/// The representation boundary (DESIGN §10): the in-process backend
/// hands the pivot whole typed columns — the zero-copy counter moves —
/// while an external wire backend streams rows through the unchanged
/// row pivot, leaving the counter where it was, and both agree on the
/// answer.
#[test]
fn pivot_zero_copy_counts_internal_backend_only() {
    let reg = obs::global_registry();

    // Internal: DirectBackend produces batches; columns move to Q.
    let db = pgdb::Db::new();
    let mut internal = session_with_trades(&db);
    let before = reg.counter_value("hyperq_pivot_zero_copy_total");
    let v_internal = internal.execute("select Price from trades where Symbol=`GOOG").unwrap();
    let after_internal = reg.counter_value("hyperq_pivot_zero_copy_total");
    assert!(
        after_internal > before,
        "internal backend must pivot zero-copy ({before} -> {after_internal})"
    );

    // The columnar executor's own metrics surface in the same dump.
    let dump = reg.render_prometheus();
    for metric in
        ["pgdb_exec_batches_total", "pgdb_batch_rows_count", "hyperq_pivot_zero_copy_total"]
    {
        assert!(dump.contains(metric), "missing {metric} in dump:\n{dump}");
    }

    // External: the same logical database behind the PG v3 wire. The
    // gateway backend only streams rows, so the session takes the row
    // pivot and the zero-copy counter must not move.
    let wire_db = pgdb::Db::new();
    {
        let mut loader_session = session_with_trades(&wire_db);
        loader_session.execute("1+1").unwrap();
    }
    let server = pgdb::server::PgServer::start(
        wire_db,
        "127.0.0.1:0",
        pgdb::server::ServerConfig::default(),
    )
    .unwrap();
    let creds =
        Credentials { user: "ops".into(), password: String::new(), database: "hist".into() };
    let gw = PgWireBackend::connect(&server.addr.to_string(), &creds).unwrap();
    let mut external = HyperQSession::new(hyperq::share(gw), SessionConfig::default());
    let before_ext = reg.counter_value("hyperq_pivot_zero_copy_total");
    let v_external = external.execute("select Price from trades where Symbol=`GOOG").unwrap();
    let after_ext = reg.counter_value("hyperq_pivot_zero_copy_total");
    assert_eq!(
        before_ext, after_ext,
        "external wire backend must take the row-pivot path"
    );
    assert!(
        hyperq::side_by_side::values_agree(&v_internal, &v_external),
        "both pivot paths must agree: {v_internal:?} vs {v_external:?}"
    );
    server.detach();
}

/// Exposure path 2: the QIPC endpoint answers the `\metrics` system
/// command inline on a live Q connection, and `\slowlog` dumps the
/// slow-query ring buffer.
#[test]
fn qipc_metrics_and_slowlog_commands_reflect_traffic() {
    let db = pgdb::Db::new();
    {
        let mut s = session_with_trades(&db);
        s.execute("1+1").unwrap();
    }
    // Slow-query threshold of 1ns: everything is "slow".
    let config = EndpointConfig {
        session: SessionConfig { slow_query: Duration::from_nanos(1), ..SessionConfig::default() },
        ..EndpointConfig::default()
    };
    let ep = QipcEndpoint::start(db, "127.0.0.1:0", config).unwrap();
    let mut client = QipcClient::connect(&ep.addr.to_string(), "ops", "").unwrap();

    client.query("select Price from trades where Symbol=`GOOG").unwrap();

    let recorded_before = obs::global_slowlog().recorded();
    assert!(recorded_before > 0, "1ns threshold must have recorded the query");

    match client.query("\\metrics").unwrap() {
        qlang::Value::Chars(dump) => {
            assert!(dump.contains("# TYPE"), "{dump}");
            assert!(dump.contains("hyperq_queries_total"), "{dump}");
            assert!(dump.contains("hyperq_slow_queries_total"), "{dump}");
        }
        other => panic!("expected chars, got {other:?}"),
    }
    match client.query("\\slowlog").unwrap() {
        qlang::Value::Chars(dump) => {
            assert!(dump.contains("select Price from trades"), "{dump}");
        }
        other => panic!("expected chars, got {other:?}"),
    }
    ep.detach();
}

/// The slow-query log captures Q text, generated SQL and per-stage
/// timings; a generous threshold captures nothing.
#[test]
fn slow_query_log_captures_stages_and_respects_threshold() {
    let db = pgdb::Db::new();
    let cfg = SessionConfig { slow_query: Duration::from_nanos(1), ..SessionConfig::default() };
    let mut s = HyperQSession::with_direct_config(&db, cfg);
    loader::load_table(&mut s, "trades", &generate_trades(&taq_cfg())).unwrap();

    let recorded_before = obs::global_slowlog().recorded();
    s.execute("select first Price by Symbol from trades").unwrap();
    let log = obs::global_slowlog();
    assert!(log.recorded() > recorded_before);
    let entries = log.entries();
    let rec = entries
        .iter()
        .rev()
        .find(|r| r.q_text.contains("first Price"))
        .expect("slow query recorded");
    assert!(!rec.sql.is_empty(), "generated SQL captured");
    assert_eq!(rec.stages.len(), 6, "per-stage timings captured: {:?}", rec.stages);

    // A generous threshold records nothing for a fast query.
    let mut quiet = HyperQSession::with_direct_config(
        &db,
        SessionConfig { slow_query: Duration::from_secs(3600), ..SessionConfig::default() },
    );
    let quiet_before = obs::global_slowlog().recorded();
    quiet.execute("select last Price by Symbol from trades").unwrap();
    assert_eq!(obs::global_slowlog().recorded(), quiet_before);
}
