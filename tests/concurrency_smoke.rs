//! Concurrency smoke test: 512 live wire sessions — 256 QIPC Q clients
//! and 256 PG v3 clients — multiplexed over two readiness-polled
//! servers backed by one 4-shard scatter-gather cluster, with a worker
//! pool an order of magnitude smaller than the session count.
//!
//! Every client owns a real TCP connection for the whole test. The QIPC
//! half drives translated sessions against the shard cluster (mixed
//! reads, per-session variables, by-aggregations); the PG half drives
//! the pgdb server (same-named per-session temp tables — the strongest
//! isolation probe there is). At a mid-test rendezvous, with all 512
//! sessions connected and idle, the net gauges must show the tentpole
//! property: `net_sessions_active` ≥ 512 while `net_worker_busy` is
//! bounded by the (deliberately small) worker pool — sessions are
//! parked state, not threads. Afterwards the process-global registry
//! must show:
//!
//! * every shard's `shard_statements_total{shard="i"}` advanced by the
//!   SAME amount — a fan-out touches all shards exactly once, so any
//!   skew means a lost or duplicated scatter leg;
//! * a zero `shard_degraded_total` delta — concurrency must not
//!   manufacture partial failures;
//! * a `hyperq_query_errors_total` delta of exactly one per QIPC
//!   session (the deliberate isolation probe).

use hyperq::endpoint::{BackendFactory, EndpointConfig, QipcClient, QipcEndpoint};
use hyperq::gateway::{Credentials, PgWireBackend};
use hyperq::shard::{Mode, ShardCluster, ShardOpts};
use hyperq::wire::{RetryPolicy, WireTimeouts};
use hyperq::{backend, loader, Backend, HyperQSession, SessionConfig};
use netpool::IoModel;
use pgdb::server::{PgServer, ServerConfig};
use pgdb::{Cell, QueryResult};
use qlang::value::{Table, Value};
use std::collections::HashMap;
use std::sync::{Arc, Barrier};

const QIPC_SESSIONS: usize = 256;
const PG_SESSIONS: usize = 256;
const SESSIONS: usize = QIPC_SESSIONS + PG_SESSIONS;
const SHARDS: usize = 4;
/// Dispatch threads per server — two servers, so 2×NET_WORKERS total;
/// the point of the exercise is that this is ≪ SESSIONS.
const NET_WORKERS: usize = 8;

fn trades() -> Table {
    // 256 rows: comfortably past the broadcast threshold (64), so the
    // table hash-partitions and session queries genuinely fan out.
    let n = 256;
    let syms = ["GOOG", "IBM", "AAPL", "MSFT"];
    Table::new(
        vec!["Symbol".into(), "Price".into(), "Size".into()],
        vec![
            Value::Symbols((0..n).map(|i| syms[i % syms.len()].into()).collect()),
            Value::Floats((0..n).map(|i| 40.0 + (i as f64) * 0.25).collect()),
            Value::Longs((0..n).map(|i| 100 + (i as i64 % 7) * 50).collect()),
        ],
    )
    .unwrap()
}

fn opts() -> ShardOpts {
    ShardOpts { broadcast_threshold: 64, float_agg: false, stats: true, keys: HashMap::new() }
}

fn spawn_client(
    name: String,
    f: impl FnOnce() + Send + 'static,
) -> std::thread::JoinHandle<()> {
    // 512 concurrent client threads: keep their stacks small.
    std::thread::Builder::new().name(name).stack_size(256 * 1024).spawn(f).unwrap()
}

#[test]
fn five_hundred_twelve_wire_sessions_multiplex_over_a_small_worker_pool() {
    // ---- the shared backend: a 4-shard scatter-gather cluster -------
    let cluster = ShardCluster::in_process_with(SHARDS, opts());
    {
        let mut bootstrap =
            HyperQSession::new(backend::share(cluster.router().unwrap()), SessionConfig::default());
        loader::load_table(&mut bootstrap, "trades", &trades()).unwrap();
    }
    assert_eq!(cluster.table_meta("trades").unwrap().mode, Mode::Partitioned);

    // ---- the two multiplexed servers --------------------------------
    let factory: BackendFactory = {
        let cluster = Arc::clone(&cluster);
        Arc::new(move || Ok(backend::share(cluster.router().unwrap())))
    };
    let qipc = QipcEndpoint::start_with(
        "127.0.0.1:0",
        EndpointConfig {
            max_connections: SESSIONS + 64,
            io_model: IoModel::Multiplexed,
            net_workers: NET_WORKERS,
            ..EndpointConfig::default()
        },
        factory,
    )
    .unwrap();
    let pg_db = pgdb::Db::new();
    let pg = PgServer::start(
        pg_db,
        "127.0.0.1:0",
        ServerConfig {
            max_connections: SESSIONS + 64,
            io_model: IoModel::Multiplexed,
            net_workers: NET_WORKERS,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let pg_addr = pg.addr.to_string();
    let creds =
        Credentials { user: "smoke".into(), password: String::new(), database: "hist".into() };
    let reg = obs::global_registry();
    let pre_boot_active = reg.gauge("net_sessions_active").get();
    {
        // Seed a shared table on the pgdb side.
        let mut boot = PgWireBackend::connect(&pg_addr, &creds).unwrap();
        boot.execute_sql("CREATE TABLE ticks (n bigint)").unwrap();
        let values: Vec<String> = (0..64).map(|i| format!("({i})")).collect();
        boot.execute_sql(&format!("INSERT INTO ticks VALUES {}", values.join(", "))).unwrap();
    }
    // The server notices the bootstrap connection's EOF asynchronously;
    // wait for the session gauge to settle before taking baselines.
    let settle_deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while reg.gauge("net_sessions_active").get() > pre_boot_active {
        assert!(std::time::Instant::now() < settle_deadline, "bootstrap session never closed");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // ---- metric baselines -------------------------------------------
    let shard_counter = |i: usize| format!("shard_statements_total{{shard=\"{i}\"}}");
    let per_shard_before: Vec<u64> =
        (0..SHARDS).map(|i| reg.counter_value(&shard_counter(i))).collect();
    let fanout_before = reg.counter_value("shard_fanout_total");
    let degraded_before = reg.counter_value("shard_degraded_total");
    let errors_before = reg.counter_value("hyperq_query_errors_total");
    let dispatches_before = reg.counter_value("net_dispatches_total");
    let active_before = reg.gauge("net_sessions_active").get();

    // Rendezvous: every client finishes its first statement, then holds
    // its connection open and idle while the main thread samples the
    // net gauges at known steady state.
    let connected = Arc::new(Barrier::new(SESSIONS + 1));
    let sampled = Arc::new(Barrier::new(SESSIONS + 1));

    let mut handles = Vec::with_capacity(SESSIONS);
    for i in 0..QIPC_SESSIONS {
        let addr = qipc.addr.to_string();
        let connected = Arc::clone(&connected);
        let sampled = Arc::clone(&sampled);
        handles.push(spawn_client(format!("qipc-{i}"), move || {
            let mut c = QipcClient::connect(&addr, "trader", "").unwrap();
            // 1: a per-session variable no other session defines.
            c.query(&format!("mine{i}: {i} + 100")).unwrap();
            connected.wait();
            sampled.wait();
            // 2: read it back — must be this session's value.
            let mine = c.query(&format!("mine{i}")).unwrap();
            assert!(
                mine.q_eq(&Value::long(i as i64 + 100)),
                "session {i} read {mine:?} for its own variable"
            );
            // 3: a neighbour's variable must NOT be visible here (the
            // one deliberate error this session contributes).
            let other = (i + 1) % QIPC_SESSIONS;
            assert!(
                c.query(&format!("mine{other}")).is_err(),
                "session {i} can see session {other}'s variable"
            );
            // 4: a shared-table scan parameterized by session. This
            // shape plans as a scatter, so every session contributes
            // exactly one statement to EVERY shard — the basis of the
            // equal-delta assertion below.
            let thresh = 50.0 + (i % 64) as f64 * 0.5;
            let expected = (0..256).filter(|j| 40.0 + (*j as f64) * 0.25 > thresh).count();
            match c.query(&format!("select from trades where Price > {thresh:.1}")).unwrap() {
                Value::Table(t) => assert_eq!(
                    t.rows(),
                    expected,
                    "session {i}: scatter scan row count at threshold {thresh}"
                ),
                other => panic!("session {i}: expected table, got {other:?}"),
            }
            // 5: a by-aggregation all sessions agree on.
            match c.query("select mx: max Price by Symbol from trades").unwrap() {
                Value::KeyedTable(k) => assert_eq!(k.key.rows(), 4),
                other => panic!("session {i}: expected keyed table, got {other:?}"),
            }
        }));
    }
    for i in 0..PG_SESSIONS {
        let addr = pg_addr.clone();
        let creds = creds.clone();
        let connected = Arc::clone(&connected);
        let sampled = Arc::clone(&sampled);
        handles.push(spawn_client(format!("pg-{i}"), move || {
            let mut b = PgWireBackend::connect_with(
                &addr,
                &creds,
                WireTimeouts::default(),
                RetryPolicy::no_retry(),
            )
            .unwrap();
            // 1: every session creates a temp table with the SAME name —
            // only per-session isolation keeps the values apart.
            b.execute_sql(&format!(
                "CREATE TEMPORARY TABLE \"HQ_SMOKE\" AS SELECT CAST({i} AS bigint) AS v"
            ))
            .unwrap();
            connected.wait();
            sampled.wait();
            // 2: the value read back must be this session's.
            match b.execute_sql("SELECT v FROM \"HQ_SMOKE\"").unwrap() {
                QueryResult::Rows(rows) => {
                    assert_eq!(rows.data[0][0], Cell::Int(i as i64), "pg session {i} isolation");
                }
                other => panic!("pg session {i}: expected rows, got {other:?}"),
            }
            // 3: the shared table answers under concurrency.
            match b.execute_sql("SELECT count(*) AS n FROM ticks").unwrap() {
                QueryResult::Rows(rows) => assert_eq!(rows.data[0][0], Cell::Int(64)),
                other => panic!("pg session {i}: expected rows, got {other:?}"),
            }
            // 4: a deliberate SQL error must not poison the connection.
            assert!(b.execute_sql("SELECT * FROM missing_relation").is_err());
            assert!(b.execute_sql("SELECT 1").is_ok());
        }));
    }

    // ---- steady-state sample: sessions are parked state, not threads
    connected.wait();
    // Let the last dispatches re-park (the worker decrements its busy
    // gauge after flushing the response the client just read).
    std::thread::sleep(std::time::Duration::from_millis(300));
    let active = reg.gauge("net_sessions_active").get() - active_before;
    let parked = reg.gauge("net_sessions_parked").get();
    let busy = reg.gauge("net_worker_busy").get();
    assert!(
        active >= SESSIONS as i64,
        "expected ≥{SESSIONS} multiplexed sessions live, gauge shows {active}"
    );
    // The whole point of the test: a worker pool an order of magnitude
    // below the session count must still hold every session live.
    const { assert!((2 * NET_WORKERS) * 10 <= SESSIONS) };
    assert!(
        busy <= (2 * NET_WORKERS) as i64,
        "net_worker_busy {busy} exceeds the {NET_WORKERS}-per-server worker pool"
    );
    assert!(
        busy * 10 <= active,
        "net_worker_busy ({busy}) must be ≪ net_sessions_active ({active})"
    );
    assert!(
        parked >= active - (2 * NET_WORKERS) as i64,
        "with all sessions idle, nearly all must be parked: parked={parked} active={active}"
    );
    sampled.wait();

    for h in handles {
        h.join().unwrap();
    }

    // ---- post-workload metric deltas --------------------------------
    // (The metric checks read process-global state, so the deltas would
    // be polluted if other tests shared this binary; this file
    // deliberately holds a single test.)
    assert!(
        reg.counter_value("net_dispatches_total") - dispatches_before >= SESSIONS as u64,
        "every session must have been dispatched through the scheduler at least once"
    );
    let per_shard_after: Vec<u64> =
        (0..SHARDS).map(|i| reg.counter_value(&shard_counter(i))).collect();
    let deltas: Vec<u64> =
        per_shard_after.iter().zip(&per_shard_before).map(|(a, b)| a - b).collect();
    assert!(
        deltas[0] >= QIPC_SESSIONS as u64,
        "each shard must see at least one statement per QIPC session, got {deltas:?}"
    );
    assert!(
        deltas.iter().all(|d| *d == deltas[0]),
        "per-shard statement deltas skewed — a scatter lost or duplicated a leg: {deltas:?}"
    );
    assert!(
        reg.counter_value("shard_fanout_total") - fanout_before >= QIPC_SESSIONS as u64,
        "expected at least one counted fan-out per QIPC session"
    );
    assert_eq!(
        reg.counter_value("shard_degraded_total"),
        degraded_before,
        "concurrency must not manufacture degraded shards"
    );
    assert_eq!(
        reg.counter_value("hyperq_query_errors_total") - errors_before,
        QIPC_SESSIONS as u64,
        "only the {QIPC_SESSIONS} deliberate isolation probes may error"
    );

    qipc.detach();
    pg.detach();
}
