//! Concurrency smoke test: sixty-four parallel translated sessions
//! against one 4-shard scatter-gather cluster, checking per-session
//! isolation and clean per-shard observability counters.
//!
//! Each thread owns a full session stack (`ShardRouter` over the shared
//! cluster + `HyperQSession`), runs a mixed workload of reads,
//! per-session variable definitions and an explicit scatter query, and
//! asserts it only ever sees its own state. Afterwards the
//! process-global metrics registry must show:
//!
//! * every shard's `shard_statements_total{shard="i"}` advanced by the
//!   SAME amount — a fan-out touches all shards exactly once, so any
//!   skew means a lost or duplicated scatter leg;
//! * a zero `shard_degraded_total` delta — concurrency must not
//!   manufacture partial failures;
//! * an error delta of exactly one per session (the deliberate
//!   isolation probe).

use hyperq::shard::{Mode, ShardCluster, ShardOpts};
use hyperq::{backend, loader, HyperQSession, SessionConfig};
use pgdb::BatchQueryResult;
use qlang::value::{Table, Value};
use std::collections::HashMap;

const SESSIONS: usize = 64;
const SHARDS: usize = 4;

fn trades() -> Table {
    // 256 rows: comfortably past the broadcast threshold (64), so the
    // table hash-partitions and session queries genuinely fan out.
    let n = 256;
    let syms = ["GOOG", "IBM", "AAPL", "MSFT"];
    Table::new(
        vec!["Symbol".into(), "Price".into(), "Size".into()],
        vec![
            Value::Symbols((0..n).map(|i| syms[i % syms.len()].into()).collect()),
            Value::Floats((0..n).map(|i| 40.0 + (i as f64) * 0.25).collect()),
            Value::Longs((0..n).map(|i| 100 + (i as i64 % 7) * 50).collect()),
        ],
    )
    .unwrap()
}

fn opts() -> ShardOpts {
    ShardOpts { broadcast_threshold: 64, float_agg: false, keys: HashMap::new() }
}

#[test]
fn sixty_four_parallel_sessions_share_a_shard_cluster_with_clean_metrics() {
    let cluster = ShardCluster::in_process_with(SHARDS, opts());
    {
        let mut bootstrap =
            HyperQSession::new(backend::share(cluster.router().unwrap()), SessionConfig::default());
        loader::load_table(&mut bootstrap, "trades", &trades()).unwrap();
    }
    assert_eq!(cluster.table_meta("trades").unwrap().mode, Mode::Partitioned);

    let reg = obs::global_registry();
    let shard_counter = |i: usize| format!("shard_statements_total{{shard=\"{i}\"}}");
    let per_shard_before: Vec<u64> =
        (0..SHARDS).map(|i| reg.counter_value(&shard_counter(i))).collect();
    let fanout_before = reg.counter_value("shard_fanout_total");
    let degraded_before = reg.counter_value("shard_degraded_total");
    let errors_before = reg.counter_value("hyperq_query_errors_total");

    let handles: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let cluster = std::sync::Arc::clone(&cluster);
            std::thread::spawn(move || {
                let router = cluster.router().unwrap();
                let mut s = HyperQSession::new(backend::share(router), SessionConfig::default());

                // 1: a per-session variable no other session defines.
                s.execute(&format!("mine{i}: {i} + 100")).unwrap();
                // 2: read it back — must be this session's value.
                let mine = s.execute(&format!("mine{i}")).unwrap();
                assert!(
                    mine.q_eq(&Value::long(i as i64 + 100)),
                    "session {i} read {mine:?} for its own variable"
                );
                // 3: a neighbour's variable must NOT be visible here.
                let other = (i + 1) % SESSIONS;
                assert!(
                    s.execute(&format!("mine{other}")).is_err(),
                    "session {i} can see session {other}'s variable"
                );
                // 4: a shared-table filter parameterized by session.
                let thresh = 40.0 + i as f64;
                let v = s
                    .execute(&format!("exec count i from trades where Price > {thresh:.1}"))
                    .unwrap();
                match &v {
                    Value::Atom(_) | Value::Longs(_) => {}
                    other => panic!("session {i}: expected count atom, got {other:?}"),
                }
                // 5: a by-aggregation all sessions agree on.
                let agg = s.execute("select mx: max Price by Symbol from trades").unwrap();
                match agg {
                    Value::KeyedTable(k) => assert_eq!(k.key.rows(), 4),
                    other => panic!("session {i}: expected keyed table, got {other:?}"),
                }
                // 6: one guaranteed scatter straight at the Backend seam
                // (Q translation may route statements above through the
                // coordinator; this one provably fans out to all shards).
                let backend = s.backend().clone();
                let mut guard = backend.lock().unwrap();
                match guard.execute_sql_batch("SELECT count(*) AS n FROM \"trades\"").unwrap() {
                    Some(BatchQueryResult::Batch(b)) => {
                        assert_eq!(b.to_rows().data[0][0], pgdb::Cell::Int(256))
                    }
                    other => panic!("session {i}: expected count batch, got {other:?}"),
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // The metric checks below read process-global state, so the deltas
    // would be polluted if other tests shared this binary; this file
    // deliberately holds a single test.
    let per_shard_after: Vec<u64> =
        (0..SHARDS).map(|i| reg.counter_value(&shard_counter(i))).collect();
    let deltas: Vec<u64> =
        per_shard_after.iter().zip(&per_shard_before).map(|(a, b)| a - b).collect();
    assert!(
        deltas[0] >= SESSIONS as u64,
        "each shard must see at least one statement per session, got {deltas:?}"
    );
    assert!(
        deltas.iter().all(|d| *d == deltas[0]),
        "per-shard statement deltas skewed — a scatter lost or duplicated a leg: {deltas:?}"
    );
    assert!(
        reg.counter_value("shard_fanout_total") - fanout_before >= SESSIONS as u64,
        "expected at least one counted fan-out per session"
    );
    assert_eq!(
        reg.counter_value("shard_degraded_total"),
        degraded_before,
        "concurrency must not manufacture degraded shards"
    );
    assert_eq!(
        reg.counter_value("hyperq_query_errors_total") - errors_before,
        SESSIONS as u64,
        "only the {SESSIONS} deliberate isolation probes may error"
    );
}
