//! Concurrency smoke test: eight parallel translated sessions against a
//! single pgdb wire server, checking per-session isolation and clean
//! observability counters.
//!
//! Each thread owns a full Gateway stack (PG v3 TCP connection +
//! `HyperQSession`), runs a mixed workload of reads and per-session
//! variable definitions, and asserts it only ever sees its own state.
//! Afterwards the process-global metrics registry must show the total
//! query count increment with a zero error delta — concurrency must not
//! manufacture failures.
//!
//! The server runs with a 4-worker executor pool (`HQ_EXEC_THREADS=4`,
//! DESIGN §12): eight concurrent sessions over morsel-parallel
//! execution is exactly the oversubscription shape a production gateway
//! sees, and results must be indistinguishable from serial ones.

use hyperq::backend;
use hyperq::gateway::{Credentials, PgWireBackend};
use hyperq::{loader, HyperQSession, SessionConfig};
use qlang::value::{Table, Value};

const SESSIONS: usize = 8;
const QUERIES_PER_SESSION: u64 = 5;

fn trades() -> Table {
    let n = 64;
    let syms = ["GOOG", "IBM", "AAPL", "MSFT"];
    Table::new(
        vec!["Symbol".into(), "Price".into(), "Size".into()],
        vec![
            Value::Symbols((0..n).map(|i| syms[i % syms.len()].into()).collect()),
            Value::Floats((0..n).map(|i| 40.0 + (i as f64) * 0.25).collect()),
            Value::Longs((0..n).map(|i| 100 + (i as i64 % 7) * 50).collect()),
        ],
    )
    .unwrap()
}

#[test]
fn eight_parallel_gateway_sessions_stay_isolated_with_clean_metrics() {
    // Set before any session thread spawns; this file holds a single
    // test, so no concurrent test observes the change.
    std::env::set_var("HQ_EXEC_THREADS", "4");
    let db = pgdb::Db::new();
    let mut bootstrap = HyperQSession::with_direct(&db);
    loader::load_table(&mut bootstrap, "trades", &trades()).unwrap();
    let pg = pgdb::server::PgServer::start(
        db,
        "127.0.0.1:0",
        pgdb::server::ServerConfig { max_connections: SESSIONS + 4, ..Default::default() },
    )
    .unwrap();
    let addr = pg.addr.to_string();

    let reg = obs::global_registry();
    let queries_before = reg.counter_value("hyperq_queries_total");
    let errors_before = reg.counter_value("hyperq_query_errors_total");

    let handles: Vec<_> = (0..SESSIONS)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let gateway = PgWireBackend::connect(
                    &addr,
                    &Credentials {
                        user: format!("fuzz{i}"),
                        password: String::new(),
                        database: "hist".into(),
                    },
                )
                .unwrap();
                let mut s =
                    HyperQSession::new(backend::share(gateway), SessionConfig::default());

                // 1: a per-session variable no other session defines.
                s.execute(&format!("mine{i}: {i} + 100")).unwrap();
                // 2: read it back — must be this session's value.
                let mine = s.execute(&format!("mine{i}")).unwrap();
                assert!(
                    mine.q_eq(&Value::long(i as i64 + 100)),
                    "session {i} read {mine:?} for its own variable"
                );
                // 3: a neighbour's variable must NOT be visible here.
                let other = (i + 1) % SESSIONS;
                assert!(
                    s.execute(&format!("mine{other}")).is_err(),
                    "session {i} can see session {other}'s variable"
                );
                // 4: a shared-table filter parameterized by session.
                let thresh = 40.0 + i as f64;
                let v = s
                    .execute(&format!("exec count i from trades where Price > {thresh:.1}"))
                    .unwrap();
                match &v {
                    Value::Atom(_) | Value::Longs(_) => {}
                    other => panic!("session {i}: expected count atom, got {other:?}"),
                }
                // 5: a by-aggregation all sessions agree on.
                let agg = s
                    .execute("select mx: max Price by Symbol from trades")
                    .unwrap();
                match agg {
                    Value::KeyedTable(k) => assert_eq!(k.key.rows(), 4),
                    other => panic!("session {i}: expected keyed table, got {other:?}"),
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // The error-counter check below reads process-global state, so the
    // count would be polluted if other tests shared this binary; this
    // file deliberately holds a single test.
    let queries_after = reg.counter_value("hyperq_queries_total");
    let errors_after = reg.counter_value("hyperq_query_errors_total");
    // The isolation probe (step 3) errors by design — one per session.
    assert_eq!(
        errors_after - errors_before,
        SESSIONS as u64,
        "only the {SESSIONS} deliberate isolation probes may error"
    );
    assert!(
        queries_after - queries_before >= SESSIONS as u64 * QUERIES_PER_SESSION,
        "expected at least {} queries counted, got {}",
        SESSIONS as u64 * QUERIES_PER_SESSION,
        queries_after - queries_before
    );
    pg.detach();
}
