//! Integration tests for the variable-scope hierarchy (paper Figure 3)
//! and eager materialization (§4.3), exercised through the full pipeline
//! and cross-checked against the reference engine.

use algebrizer::MaterializationPolicy;
use hyperq::side_by_side::SideBySide;
use hyperq::{loader, HyperQSession, SessionConfig};
use qlang::value::{Table, Value};

fn trades() -> Table {
    Table::new(
        vec!["Symbol".into(), "Price".into(), "Size".into()],
        vec![
            Value::Symbols(vec!["GOOG".into(), "IBM".into(), "GOOG".into(), "MSFT".into()]),
            Value::Floats(vec![100.0, 50.0, 101.5, 70.0]),
            Value::Longs(vec![10, 20, 30, 40]),
        ],
    )
    .unwrap()
}

#[test]
fn locals_shadow_session_variables_in_both_engines() {
    let db = pgdb::Db::new();
    let mut f = SideBySide::new(&db);
    f.load("trades", &trades()).unwrap();
    // `lim` exists at session scope AND as a function parameter; the
    // parameter must win inside the function (Figure 3).
    f.assert_match(concat!(
        "lim: 60.0; ",
        "g: {[lim] exec count i from trades where Price > lim}; ",
        "g[100.0]"
    ))
    .unwrap();
    // Outside the function, the session variable is intact.
    f.assert_match("exec count i from trades where Price > lim").unwrap();
}

#[test]
fn session_variables_redefine_freely() {
    // Paper §3.2.1: x can be rebound to values of different types.
    let db = pgdb::Db::new();
    let mut s = HyperQSession::with_direct(&db);
    loader::load_table(&mut s, "trades", &trades()).unwrap();
    s.execute("x: 55.0").unwrap();
    let n1 = s.execute("exec count i from trades where Price > x").unwrap();
    assert!(n1.q_eq(&Value::long(3)));
    s.execute("x: 99.0").unwrap();
    let n2 = s.execute("exec count i from trades where Price > x").unwrap();
    assert!(n2.q_eq(&Value::long(2)));
    // Rebind to a list and use with `in`.
    s.execute("x: `GOOG`MSFT").unwrap();
    let n3 = s.execute("exec count i from trades where Symbol in x").unwrap();
    assert!(n3.q_eq(&Value::long(3)));
}

#[test]
fn table_variables_inline_logically() {
    let db = pgdb::Db::new();
    let mut s = HyperQSession::with_direct(&db);
    loader::load_table(&mut s, "trades", &trades()).unwrap();
    let (_, trs) = s
        .execute_traced("goog: select Price, Size from trades where Symbol=`GOOG; select max Price from goog")
        .unwrap();
    // Logical policy: no CREATE TEMP anywhere; the view text is inlined.
    for tr in &trs {
        for stmt in &tr.statements {
            assert!(
                !stmt.sql.contains("CREATE TEMPORARY"),
                "logical policy must not materialize: {}",
                stmt.sql
            );
        }
    }
}

#[test]
fn physical_materialization_generates_paper_sql_shape() {
    let db = pgdb::Db::new();
    let cfg = SessionConfig { policy: MaterializationPolicy::Physical, ..Default::default() };
    let mut s = HyperQSession::with_direct_config(&db, cfg);
    loader::load_table(&mut s, "trades", &trades()).unwrap();
    let (v, trs) = s
        .execute_traced("dt: select Price from trades where Symbol=`GOOG; select max Price from dt")
        .unwrap();
    let sqls: Vec<&str> =
        trs.iter().flat_map(|t| t.statements.iter().map(|s| s.sql.as_str())).collect();
    // §4.3's exact shape: CREATE TEMPORARY TABLE ... ordcol ... IS NOT
    // DISTINCT FROM ... ORDER BY ordcol, then the aggregate over it.
    assert!(sqls[0].starts_with("CREATE TEMPORARY TABLE \"HQ_TEMP_1\" AS SELECT"), "{}", sqls[0]);
    assert!(sqls[0].contains("\"ordcol\""), "{}", sqls[0]);
    assert!(sqls[0].contains("IS NOT DISTINCT FROM"), "{}", sqls[0]);
    assert!(sqls[0].ends_with("ORDER BY \"ordcol\" ASC"), "{}", sqls[0]);
    assert!(sqls[1].contains("max("), "{}", sqls[1]);
    assert!(sqls[1].contains("HQ_TEMP_1"), "{}", sqls[1]);
    match v {
        Value::Table(t) => {
            assert!(t.column("Price").unwrap().q_eq(&Value::Floats(vec![101.5])));
        }
        other => panic!("expected table, got {other:?}"),
    }
}

#[test]
fn temp_table_sequence_numbers_advance() {
    let db = pgdb::Db::new();
    let cfg = SessionConfig { policy: MaterializationPolicy::Physical, ..Default::default() };
    let mut s = HyperQSession::with_direct_config(&db, cfg);
    loader::load_table(&mut s, "trades", &trades()).unwrap();
    let (_, trs) = s
        .execute_traced(concat!(
            "a: select Price from trades where Symbol=`GOOG; ",
            "b: select Price from trades where Symbol=`IBM; ",
            "select (max Price) - min Price from a uj b"
        ))
        .unwrap();
    let all: String = trs
        .iter()
        .flat_map(|t| t.statements.iter().map(|s| s.sql.clone()))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(all.contains("HQ_TEMP_1"), "{all}");
    assert!(all.contains("HQ_TEMP_2"), "{all}");
}

#[test]
fn both_policies_agree_with_reference_on_multi_variable_programs() {
    for policy in [MaterializationPolicy::Logical, MaterializationPolicy::Physical] {
        let db = pgdb::Db::new();
        let cfg = SessionConfig { policy, ..Default::default() };
        let mut f = SideBySide::with_config(&db, cfg);
        f.load("trades", &trades()).unwrap();
        f.assert_match(concat!(
            "cheap: select from trades where Price < 80.0; ",
            "big: select from cheap where Size > 15; ",
            "select s: sum Size by Symbol from big"
        ))
        .unwrap_or_else(|e| panic!("policy {policy:?}: {e}"));
    }
}

#[test]
fn function_redefinition_takes_effect() {
    // §3.2.3: "If f is invoked later in the same session, there is no
    // guarantee that the function definition would still be the same."
    let db = pgdb::Db::new();
    let mut s = HyperQSession::with_direct(&db);
    loader::load_table(&mut s, "trades", &trades()).unwrap();
    s.execute("f: {[s] select max Price from trades where Symbol=s}").unwrap();
    let v1 = s.execute("f[`GOOG]").unwrap();
    s.execute("f: {[s] select min Price from trades where Symbol=s}").unwrap();
    let v2 = s.execute("f[`GOOG]").unwrap();
    match (v1, v2) {
        (Value::Table(a), Value::Table(b)) => {
            assert!(a.column("Price").unwrap().q_eq(&Value::Floats(vec![101.5])));
            assert!(b.column("Price").unwrap().q_eq(&Value::Floats(vec![100.0])));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn global_assignment_survives_session_end() {
    let db = pgdb::Db::new();
    let mut f = SideBySide::new(&db);
    f.load("trades", &trades()).unwrap();
    // Define a global from "one client", end the session, use it again.
    f.hyperq.execute("GLOBAL_SYMS:: `GOOG`IBM").unwrap();
    f.reference.run("GLOBAL_SYMS:: `GOOG`IBM").unwrap();
    f.hyperq.end_session();
    f.reference.env.end_session();
    f.assert_match("select Price from trades where Symbol in GLOBAL_SYMS").unwrap();
}
