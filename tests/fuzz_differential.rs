//! Differential fuzzing over generated Q programs (DESIGN §9).
//!
//! Two tests share this binary:
//!
//! * `fixed_seed_fuzz_budget_is_divergence_free` — the conformance
//!   gate: `QGEN_BUDGET` (default 500) generated programs at
//!   `QGEN_SEED` (default 42) run through the reference interpreter,
//!   the cache-cold translate pipeline, and the cache-warm translate
//!   pipeline, asserting zero divergences and full grammar-family
//!   coverage. Any divergence is shrunk and written to
//!   `tests/corpus/found_*.q` (CI uploads those as artifacts before
//!   failing).
//! * `shrinker_demo_*` — proves the shrinker earns its keep: a known
//!   historical bug (Q `count col` mistranslated to null-skipping
//!   `COUNT(col)`) is re-introduced behind a test-only fault hook, and
//!   the fuzz loop must find it and shrink it to a repro of at most 3
//!   statements over at most 10 rows.
//!
//! The fault hook is process-global, so the tests serialize on a mutex.

use std::path::PathBuf;
use std::sync::Mutex;

use qgen::{run_fuzz, FuzzConfig};

static FAULT_HOOK: Mutex<()> = Mutex::new(());

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

#[test]
fn fixed_seed_fuzz_budget_is_divergence_free() {
    let _serial = FAULT_HOOK.lock().unwrap();
    let cfg = FuzzConfig {
        corpus_dir: Some(corpus_dir()),
        ..FuzzConfig::from_env()
    };
    let report = run_fuzz(&cfg);
    assert_eq!(report.programs, cfg.budget, "every budgeted program must run");
    assert!(
        report.statements >= cfg.budget,
        "programs average at least one statement ({} over {})",
        report.statements,
        report.programs
    );
    for (family, count) in report.coverage.families() {
        assert!(
            count > 0,
            "grammar family {family} never generated at seed {} budget {}",
            cfg.seed,
            cfg.budget
        );
    }
    if !report.bugs.is_empty() {
        let mut lines = Vec::new();
        for b in &report.bugs {
            lines.push(format!(
                "program {} [{:?}] {} -> {:?}",
                b.program_index, b.kinds, b.explanation, b.repro_path
            ));
        }
        panic!(
            "{} divergent program(s) at seed {} (repros in tests/corpus/):\n{}",
            report.bugs.len(),
            cfg.seed,
            lines.join("\n")
        );
    }
}

#[test]
fn shrinker_demo_reintroduced_count_col_bug_yields_minimal_repro() {
    let _serial = FAULT_HOOK.lock().unwrap();
    // Reset the fault hook even if an assertion below panics.
    struct ResetHook;
    impl Drop for ResetHook {
        fn drop(&mut self) {
            algebrizer::testhooks::set_reintroduce_count_col_bug(false);
        }
    }
    let _reset = ResetHook;
    algebrizer::testhooks::set_reintroduce_count_col_bug(true);

    let cfg = FuzzConfig { seed: 1, budget: 40, corpus_dir: None, shrink: true };
    let report = run_fuzz(&cfg);
    assert!(
        !report.bugs.is_empty(),
        "re-introduced COUNT(col) bug must surface within {} programs",
        cfg.budget
    );
    // At least one bug must shrink to the acceptance bar: <=3 statements
    // over <=10 total rows, and still be about count.
    let minimal = report
        .bugs
        .iter()
        .filter(|b| {
            let rows: usize = b
                .repro
                .tables()
                .map(|ts| ts.iter().map(|(_, t)| t.rows()).sum())
                .unwrap_or(usize::MAX);
            b.statements.len() <= 3 && rows <= 10
        })
        .min_by_key(|b| b.statements.len());
    let minimal = minimal.unwrap_or_else(|| {
        panic!(
            "no bug shrank to <=3 statements over <=10 rows; got: {:?}",
            report
                .bugs
                .iter()
                .map(|b| (b.statements.clone(), b.repro.tables().map(|ts| ts
                    .iter()
                    .map(|(_, t)| t.rows())
                    .sum::<usize>())))
                .collect::<Vec<_>>()
        )
    });
    assert!(
        minimal.statements.iter().any(|s| s.contains("count")),
        "minimal repro should still exercise count: {:?}",
        minimal.statements
    );
    // The repro must replay: with the hook still on it diverges...
    let replayed = qgen::replay(&minimal.repro).expect("repro must replay");
    assert!(
        !replayed.clean(),
        "with the fault hook on, the shrunk repro must still diverge"
    );
    // ...and with the hook off (the shipped translator) it is clean,
    // proving the divergence was the injected bug and nothing else.
    algebrizer::testhooks::set_reintroduce_count_col_bug(false);
    let fixed = qgen::replay(&minimal.repro).expect("repro must replay");
    assert!(
        fixed.clean(),
        "with the fault hook off the repro must agree: {:?}",
        fixed.divergent()
    );
}
