//! Parallel-vs-serial differential gate (DESIGN §12).
//!
//! The morsel-driven executor promises *bit-identical* results at any
//! worker count: canonical merge order makes row order, group order,
//! storage classes, and error identity independent of scheduling. This
//! suite enforces that promise three ways:
//!
//! 1. direct pgdb structural equality on multi-morsel (> 64K-row)
//!    tables across filter / projection / group-by / DISTINCT-aggregate
//!    / equi-join shapes, at `exec_threads` 1 vs 4;
//! 2. the full differential-oracle statement list and a fixed-seed qgen
//!    fuzz slice, run under `HQ_EXEC_THREADS` 1 and 4;
//! 3. stream-vs-batch equivalence: the streaming SELECT path must
//!    reassemble to exactly the materializing executor's batch, in
//!    bounded (≤ one morsel) chunks.

use hyperq::side_by_side::SideBySide;
use hyperq_workload::taq::{generate_quotes, generate_trades, TaqConfig};
use pgdb::{Batch, BatchQueryResult, Cell, Db, Session, StreamQueryResult, MORSEL_ROWS};
use qgen::{run_fuzz, FuzzConfig};
use qlang::value::{Table, Value};
use std::sync::Mutex;

/// `HQ_EXEC_THREADS` is process-global; tests that touch it serialize
/// here so concurrently running tests in this binary never observe a
/// half-configured environment.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_exec_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("HQ_EXEC_THREADS", n.to_string());
    let out = f();
    std::env::remove_var("HQ_EXEC_THREADS");
    out
}

// ---------------------------------------------------------------------
// 1. Direct pgdb: multi-morsel tables, serial vs 4-worker bit-equality.
// ---------------------------------------------------------------------

/// Rows in the big fixture: three morsels plus a ragged tail, so every
/// parallel operator splits and the tail range is shorter than a morsel.
const BIG_ROWS: usize = 3 * MORSEL_ROWS + 1_234;

/// A deterministic multi-morsel fact table: `id` unique, `grp` cycles
/// through 1000 groups, `val` floats (every 97th row NULL), `sym`
/// cycles through 8 symbols (every 131st row NULL).
fn big_db() -> Db {
    let syms = ["AA", "BB", "CC", "DD", "EE", "FF", "GG", "HH"];
    let columns = vec![
        pgdb::Column::new("id", pgdb::PgType::Int8),
        pgdb::Column::new("grp", pgdb::PgType::Int8),
        pgdb::Column::new("val", pgdb::PgType::Float8),
        pgdb::Column::new("sym", pgdb::PgType::Varchar),
    ];
    let rows: Vec<Vec<Cell>> = (0..BIG_ROWS)
        .map(|i| {
            vec![
                Cell::Int(i as i64),
                Cell::Int((i % 1000) as i64),
                if i % 97 == 0 { Cell::Null } else { Cell::Float((i % 7919) as f64 * 0.5) },
                if i % 131 == 0 {
                    Cell::Null
                } else {
                    Cell::Text(syms[i % syms.len()].to_string())
                },
            ]
        })
        .collect();
    let db = Db::new();
    db.put_table("big", columns, rows);
    // Dimension side for the equi-join: 2000 keys, so only grp values
    // 0..1000 match and half the dimension build side goes unprobed.
    let dim_cols = vec![
        pgdb::Column::new("k", pgdb::PgType::Int8),
        pgdb::Column::new("label", pgdb::PgType::Varchar),
    ];
    let dim_rows: Vec<Vec<Cell>> =
        (0..2000).map(|k| vec![Cell::Int(k), Cell::Text(format!("L{k}"))]).collect();
    db.put_table("dim", dim_cols, dim_rows);
    db
}

fn batch(session: &mut Session, sql: &str) -> Batch {
    match session.execute_batch(sql).unwrap() {
        BatchQueryResult::Batch(b) => b,
        other => panic!("expected batch for {sql}, got {other:?}"),
    }
}

/// The shapes the tentpole parallelizes. Every one is > 1 morsel of
/// input, so the 4-thread run genuinely splits work.
const PARALLEL_SHAPES: &[&str] = &[
    // scan + filter + projection (vectorizable predicate and exprs)
    "SELECT id, val * 2.0 AS v2 FROM big WHERE grp > 500 AND val > 100.0",
    // filter keeping almost everything (gather path dominates)
    "SELECT id FROM big WHERE id >= 10",
    // grouped aggregation, partial tables merged in morsel order
    "SELECT grp, sum(val) AS s, count(*) AS n FROM big GROUP BY grp",
    // DISTINCT aggregates on the columnar path (satellite 1)
    "SELECT grp, count(DISTINCT sym) AS ds, sum(DISTINCT val) AS dv FROM big GROUP BY grp",
    // scalar aggregate over a filtered multi-morsel input
    "SELECT count(*) AS n, min(val) AS mn, max(val) AS mx FROM big WHERE grp < 900",
    // equi-join: big probe side against a small built side
    "SELECT id, label FROM (SELECT id, grp FROM big) AS f \
     INNER JOIN (SELECT k, label FROM dim) AS d ON grp = k",
    // left join null-extends where grp has no dim row (none here) and
    // exercises the parallel gather of both sides
    "SELECT id, label FROM (SELECT id, grp FROM big WHERE val > 2000.0) AS f \
     LEFT OUTER JOIN (SELECT k, label FROM dim) AS d ON grp = k",
    // row-fallback expression (CASE) over the filtered frame: stays
    // serial but must agree after a parallel filter upstream
    "SELECT CASE WHEN grp > 500 THEN val ELSE 0.0 END AS c FROM big WHERE id > 1000",
];

#[test]
fn parallel_execution_is_bit_identical_to_serial() {
    let db = big_db();
    for sql in PARALLEL_SHAPES {
        let mut serial = db.session();
        serial.set_exec_threads(Some(1));
        let mut parallel = db.session();
        parallel.set_exec_threads(Some(4));
        let a = batch(&mut serial, sql);
        let b = batch(&mut parallel, sql);
        assert!(a.structurally_equal(&b), "structural divergence for {sql}");
        assert_eq!(a, b, "bit-level divergence for {sql}");
    }
}

#[test]
fn parallel_errors_match_serial_errors() {
    let db = big_db();
    // `sym + 1` fails typing at runtime; the morsel pool must surface
    // the same canonical error the serial loop stops at.
    for sql in [
        "SELECT sym + 1 AS boom FROM big WHERE id >= 0",
        "SELECT id FROM big WHERE sym + 1 > 0",
    ] {
        let mut serial = db.session();
        serial.set_exec_threads(Some(1));
        let mut parallel = db.session();
        parallel.set_exec_threads(Some(4));
        let ea = serial.execute_batch(sql).unwrap_err();
        let eb = parallel.execute_batch(sql).unwrap_err();
        assert_eq!(ea, eb, "error identity diverged for {sql}");
    }
}

// ---------------------------------------------------------------------
// 2. Oracle + fuzz under HQ_EXEC_THREADS 1 and 4.
// ---------------------------------------------------------------------

fn taq_cfg() -> TaqConfig {
    TaqConfig { rows: 200, symbols: 4, days: 2, seed: 4242 }
}

/// Same fixture as `tests/differential_oracle.rs` (kept in sync by
/// hand — the oracle file pins the statement count).
fn oracle() -> SideBySide {
    let db = pgdb::Db::new();
    let mut f = SideBySide::new(&db);
    f.load("trades", &generate_trades(&taq_cfg())).unwrap();
    f.load("quotes", &generate_quotes(&TaqConfig { rows: 600, ..taq_cfg() })).unwrap();
    let nullable = Table::new(
        vec!["Sym".into(), "Qty".into(), "Px".into()],
        vec![
            Value::Symbols(vec!["A".into(), "B".into(), "A".into(), "C".into(), "B".into()]),
            Value::Longs(vec![10, i64::MIN, 30, i64::MIN, 50]),
            Value::Floats(vec![1.5, 2.5, f64::NAN, 4.0, f64::NAN]),
        ],
    )
    .unwrap();
    f.load("nullable", &nullable).unwrap();
    let refdata = Table::new(
        vec!["Symbol".into(), "Sector".into(), "Lot".into()],
        vec![
            Value::Symbols(vec!["AAPL".into(), "GOOG".into(), "IBM".into()]),
            Value::Symbols(vec!["tech".into(), "tech".into(), "services".into()]),
            Value::Longs(vec![100, 10, 50]),
        ],
    )
    .unwrap();
    f.load("refdata", &refdata).unwrap();
    f
}

/// The oracle statement list, verbatim from `differential_oracle.rs`.
const ORACLE_STATEMENTS: &[&str] = &[
    "select from trades",
    "select Symbol, Price from trades",
    "select Price from trades where Symbol=`GOOG",
    "select Price, Size from trades where Date=2016.06.26",
    "select from trades where Price within 50 150",
    "select Price from trades where Symbol in `GOOG`IBM, Size>100",
    "select Notional: Price*Size from trades where Size>500",
    "exec Price from trades where Symbol=`GOOG",
    "select from quotes where Ask>Bid",
    "select mx: max Price, mn: min Price from trades",
    "select s: sum Size, a: avg Price from trades",
    "select n: count i from trades where Symbol=`IBM",
    "select spread: avg Ask-Bid from quotes",
    "select mx: max Price by Symbol from trades",
    "select s: sum Size by Date from trades",
    "select n: count i by Symbol from trades",
    "select vwap: (sum Price*Size) % sum Size by Symbol from trades",
    "select mx: max Price by Date, Symbol from trades",
    "select s: sum Size by 1000 xbar Size from trades",
    "aj[`Symbol`Time; select Symbol, Time, Price from trades; \
     select Symbol, Time, Bid, Ask from quotes]",
    "aj[`Symbol`Time; select Symbol, Time, Price from trades where Date=2016.06.26; \
     select Symbol, Time, Bid, Ask from quotes where Date=2016.06.26]",
    "trades lj 1!refdata",
    "trades ij 1!refdata",
    "select mx: max Price by Sector from trades lj 1!refdata",
    "(select Symbol, Price from trades where Size>900) uj \
     select Symbol, Price, Size from trades where Size<100",
    "select from nullable where Qty=0N",
    "select from nullable where Qty>20",
    "select s: sum Qty by Sym from nullable",
    "select n: count Px, m: count i from nullable",
    "select mx: max Px, mn: min Px from nullable",
    "update Qty: 0N from nullable where Sym=`A",
    "select Price, prevPx: prev Price from trades",
    "select d: deltas Price from trades where Symbol=`GOOG",
    "select open: first Price, close: last Price by Symbol from trades",
    "select Price, nextPx: next Price from trades where Symbol=`IBM",
    "`Price xdesc select from trades where Date=2016.06.26",
    "`Symbol`Time xasc select Symbol, Time, Price from trades",
    "select last Bid by Symbol from quotes",
];

#[test]
fn oracle_agrees_at_one_and_four_workers() {
    for threads in [1usize, 4] {
        let failures = with_exec_threads(threads, || {
            let mut f = oracle();
            f.check_all(ORACLE_STATEMENTS)
        });
        assert!(
            failures.is_empty(),
            "HQ_EXEC_THREADS={threads}: {} of {} oracle statements diverged:\n{:#?}",
            failures.len(),
            ORACLE_STATEMENTS.len(),
            failures
        );
    }
}

#[test]
fn fuzz_slice_is_clean_at_one_and_four_workers() {
    // Fixed seed, 200 programs, no shrinking (speed): the fuzz gate must
    // pass identically at both worker counts. Divergences where the two
    // runs both error on the same statement count as agreement — the
    // tri-executor driver already treats (Err, Err) that way.
    let cfg = FuzzConfig { seed: 20260807, budget: 200, corpus_dir: None, shrink: false };
    let serial = with_exec_threads(1, || run_fuzz(&cfg));
    let parallel = with_exec_threads(4, || run_fuzz(&cfg));
    assert_eq!(serial.programs, 200);
    assert_eq!(serial.programs, parallel.programs);
    assert_eq!(serial.statements, parallel.statements);
    let describe = |r: &qgen::FuzzReport| {
        r.bugs
            .iter()
            .map(|b| format!("p{}: {}", b.program_index, b.explanation))
            .collect::<Vec<_>>()
    };
    assert!(
        serial.bugs.is_empty(),
        "serial fuzz slice found divergences:\n{:#?}",
        describe(&serial)
    );
    assert!(
        parallel.bugs.is_empty(),
        "4-worker fuzz slice found divergences:\n{:#?}",
        describe(&parallel)
    );
}

// ---------------------------------------------------------------------
// 3. Stream-vs-batch equivalence and bounded chunking.
// ---------------------------------------------------------------------

#[test]
fn streaming_select_reassembles_to_the_materialized_batch() {
    let db = big_db();
    for sql in [
        "SELECT id, val FROM big WHERE grp > 250",
        "SELECT id, val * 3.0 AS v3, sym FROM big",
        "SELECT id FROM big WHERE grp = 999",
    ] {
        let mut s = db.session();
        s.set_exec_threads(Some(1));
        let want = batch(&mut s, sql);
        let stream = match s.execute_stream(sql).unwrap() {
            StreamQueryResult::Stream(st) => st,
            other => panic!("expected stream for {sql}, got {other:?}"),
        };
        let mut chunks = 0usize;
        let mut peak = 0usize;
        let mut acc: Option<Batch> = None;
        let schema = stream.schema.clone();
        for item in stream {
            let chunk = item.unwrap();
            assert!(
                chunk.rows() <= MORSEL_ROWS,
                "{sql}: chunk of {} rows exceeds the morsel bound",
                chunk.rows()
            );
            chunks += 1;
            peak = peak.max(chunk.rows());
            match &mut acc {
                None => acc = Some(chunk),
                Some(b) => b.append(chunk),
            }
        }
        let got = acc.unwrap_or_else(|| Batch::empty(schema));
        assert_eq!(got, want, "stream/batch divergence for {sql}");
        if want.rows() > MORSEL_ROWS {
            assert!(chunks > 1, "{sql}: multi-morsel result arrived as one chunk");
            assert!(
                peak <= MORSEL_ROWS && peak < want.rows(),
                "{sql}: peak chunk {peak} rows not bounded below result {}",
                want.rows()
            );
        }
    }
}

#[test]
fn streaming_errors_fuse_the_stream_and_match_serial() {
    let db = big_db();
    let mut s = db.session();
    s.set_exec_threads(Some(1));
    let sql = "SELECT sym + 1 AS boom FROM big";
    let want = s.execute_batch(sql).unwrap_err();
    let stream = match s.execute_stream(sql).unwrap() {
        StreamQueryResult::Stream(st) => st,
        other => panic!("expected stream, got {other:?}"),
    };
    let mut saw_err = None;
    let mut after_err = 0usize;
    for item in stream {
        match item {
            Ok(_) if saw_err.is_some() => after_err += 1,
            Ok(_) => {}
            Err(e) => saw_err = Some(e),
        }
    }
    assert_eq!(saw_err, Some(want), "mid-stream error must match the serial error");
    assert_eq!(after_err, 0, "stream must fuse after the first error");
}
